package vet

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder flags cross-function lock-order inversions: somewhere in the
// module lock B is acquired while A is held, and somewhere else A is
// acquired while B is held. Per-function acquisition pairs are folded
// through the static call graph, so an inversion hidden behind a helper
// (f holds A and calls g, which locks B; h holds B and locks A) is found
// even though no single function ever touches both locks — the
// accept/drain shutdown race in PR 5 was exactly a cross-function
// ordering bug that intraprocedural checks could not see.
//
// Lock identity is class-based (declaring type + field name, or package +
// variable name for globals), not instance-based: two instances of the
// same class locked AB and BA are reported even though a particular pair
// of instances might never deadlock. Same-class nesting (hand-over-hand)
// is not reported, since the class gives no order between instances.
//
// The analyzer computes its pair table once per module (cached in
// ModuleFacts) and emits each package's share of the findings.
var LockOrder = &Analyzer{
	Name: "lock-order",
	Doc:  "no AB/BA lock-order inversions across the static call graph",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	facts := pass.Facts
	if facts.lockOrderDiags == nil {
		facts.lockOrderDiags = computeLockOrder(facts)
	}
	for _, d := range facts.lockOrderDiags[pass.Pkg.Path] {
		pass.report(d)
	}
}

// ---------------------------------------------------------------------------
// Shared lock-region machinery (also used by atomic-mix).

// lockRegion is one held span of a mutex inside one function body.
// Function literals are separate execution contexts and get their own
// region lists.
type lockRegion struct {
	class string    // module-wide identity, e.g. "server.Server.mu"
	base  string    // receiver spelling, e.g. "s" (same-instance hint)
	rlock bool      // RLock/RUnlock region
	start token.Pos // acquisition site
	end   token.Pos // matching release, or scope end for deferred/missing
}

// covers reports whether pos falls inside the held span.
func (r lockRegion) covers(pos token.Pos) bool { return pos > r.start && pos < r.end }

// lockRegionsIn computes the held regions of body, treating nested
// function literals as opaque (their regions belong to the literal, not
// to this body).
//
// An acquisition's region ends at the first matching release at the same
// or shallower block depth. A release buried deeper — the early-return
// `if done { mu.Unlock(); return }` idiom — does not close the region for
// the fall-through path; when only such releases exist the region runs to
// the last of them (or, with none at all, to the end of the body, which
// also covers deferred unlocks).
func lockRegionsIn(pkg *Package, body *ast.BlockStmt) []lockRegion {
	// Block nesting intervals, for computing the depth of each op.
	var blocks []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			blocks = append(blocks, n)
		}
		return true
	})
	depthOf := func(pos token.Pos) int {
		d := 0
		for _, b := range blocks {
			if pos > b.Pos() && pos < b.End() {
				d++
			}
		}
		return d
	}

	type acquireRelease struct {
		pos      token.Pos
		depth    int
		class    string
		base     string
		kind     string // "Lock", "RLock", "Unlock", "RUnlock"
		deferred bool
	}
	var ops []acquireRelease
	var collect func(n ast.Node, deferred bool)
	collect = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				collect(c.Call, true)
				return false
			case *ast.CallExpr:
				sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Lock", "Unlock", "RLock", "RUnlock":
					if !isSyncMutex(pkg.Info.Types[sel.X].Type) {
						return true
					}
					class, ok := lockClassOf(pkg, sel.X)
					if !ok {
						return true
					}
					ops = append(ops, acquireRelease{
						pos:      c.Pos(),
						depth:    depthOf(c.Pos()),
						class:    class,
						base:     exprString(pkg, baseOf(sel.X)),
						kind:     sel.Sel.Name,
						deferred: deferred,
					})
				}
			}
			return true
		})
	}
	collect(body, false)
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })

	var regions []lockRegion
	for _, op := range ops {
		var want string
		switch op.kind {
		case "Lock":
			want = "Unlock"
		case "RLock":
			want = "RUnlock"
		default:
			continue
		}
		end := token.NoPos
		var lastDeep token.Pos
		for _, rel := range ops {
			if rel.kind != want || rel.class != op.class || rel.base != op.base ||
				rel.deferred || rel.pos <= op.pos {
				continue
			}
			if rel.depth <= op.depth {
				end = rel.pos
				break
			}
			lastDeep = rel.pos
		}
		if end == token.NoPos {
			end = body.End()
			if lastDeep != token.NoPos {
				end = lastDeep
			}
		}
		regions = append(regions, lockRegion{
			class: op.class,
			base:  op.base,
			rlock: op.kind == "RLock",
			start: op.pos,
			end:   end,
		})
	}
	return regions
}

// lockClassOf names the module-wide identity class of a mutex expression:
// "pkg.Type.field" for struct-field mutexes, "pkg.var" for package-level
// mutexes. Local mutex variables have no stable cross-function identity
// and yield ok=false.
func lockClassOf(pkg *Package, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		// Field mutex: identify by the declaring struct type.
		t := pkg.Info.Types[e.X].Type
		if t == nil {
			return "", false
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + e.Sel.Name, true
		}
		// Qualified package-level mutex (pkg.mu).
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Name() + "." + e.Sel.Name, true
			}
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + e.Name, true
		}
	}
	return "", false
}

// baseOf returns the receiver base of a selector chain (s.mu -> s,
// t.o.c.mu -> t.o.c) or the expression itself.
func baseOf(e ast.Expr) ast.Expr {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return e
}

// exprString renders an expression using the package's file set (the
// *Pass-free counterpart of Pass.ExprString, for module-level passes).
func exprString(pkg *Package, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, pkg.Fset, e); err != nil {
		return "?"
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Module-wide pair folding.

// lockPair is one observed "B acquired while A held" site.
type lockPair struct {
	held, acquired string
	pos            token.Pos
	pkg            *Package
	via            string // non-empty when B is reached through a call chain
}

// computeLockOrder folds per-function acquisition pairs through the call
// graph and returns the inversion diagnostics grouped by package path.
func computeLockOrder(facts *ModuleFacts) map[string][]Diagnostic {
	graph := facts.Graph()
	nodes := graph.Nodes()

	// transAcquires: every lock class a function may acquire, directly or
	// through the functions it (transitively, statically) calls.
	memo := make(map[*types.Func]map[string]bool)
	onStack := make(map[*types.Func]bool)
	var trans func(fn *types.Func) map[string]bool
	trans = func(fn *types.Func) map[string]bool {
		if got, ok := memo[fn]; ok {
			return got
		}
		node := graph.NodeOf(fn)
		if node == nil || onStack[fn] {
			return nil
		}
		onStack[fn] = true
		defer func() { onStack[fn] = false }()
		out := make(map[string]bool)
		for _, r := range lockRegionsIn(node.Pkg, node.Decl.Body) {
			out[r.class] = true
		}
		for i := range node.Calls {
			site := &node.Calls[i]
			if site.InFuncLit || site.Async {
				continue // executes when the literal/goroutine runs, not on this call
			}
			for class := range trans(site.Callee) {
				out[class] = true
			}
		}
		memo[fn] = out
		return out
	}

	// Collect ordered pairs: for every held region, every other class
	// acquired inside it — directly or via a static call.
	var pairs []lockPair
	for _, node := range nodes {
		regions := lockRegionsIn(node.Pkg, node.Decl.Body)
		for _, held := range regions {
			for _, inner := range regions {
				if inner.class != held.class && held.covers(inner.start) {
					pairs = append(pairs, lockPair{
						held: held.class, acquired: inner.class,
						pos: inner.start, pkg: node.Pkg,
					})
				}
			}
			for i := range node.Calls {
				site := &node.Calls[i]
				if site.InFuncLit || site.Async || !held.covers(site.Pos) {
					continue
				}
				for class := range trans(site.Callee) {
					if class == held.class {
						continue
					}
					pairs = append(pairs, lockPair{
						held: held.class, acquired: class,
						pos: site.Pos, pkg: node.Pkg,
						via: site.Callee.Name(),
					})
				}
			}
		}
	}

	// Keep the earliest site per ordered (held, acquired) pair so the
	// report (and the baseline) stays stable as unrelated code moves.
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].pos < pairs[j].pos })
	first := make(map[[2]string]lockPair)
	for _, p := range pairs {
		key := [2]string{p.held, p.acquired}
		if _, ok := first[key]; !ok {
			first[key] = p
		}
	}

	out := make(map[string][]Diagnostic)
	emit := func(p, q lockPair) {
		qpos := q.pkg.Fset.Position(q.pos)
		file := qpos.Filename
		if rel, err := filepath.Rel(facts.Mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		via := ""
		if p.via != "" {
			via = fmt.Sprintf(" (via call to %s)", p.via)
		}
		d := Diagnostic{
			Pos: p.pkg.Fset.Position(p.pos),
			Message: fmt.Sprintf(
				"lock-order inversion: %s acquired while holding %s%s, but %s:%d acquires %s while holding %s",
				p.acquired, p.held, via, file, qpos.Line, p.held, p.acquired),
		}
		out[p.pkg.Path] = append(out[p.pkg.Path], d)
	}
	seen := make(map[[2]string]bool)
	for key, p := range first {
		rev := [2]string{key[1], key[0]}
		q, inverted := first[rev]
		if !inverted {
			continue
		}
		ordered := key
		if ordered[0] > ordered[1] {
			ordered = rev
		}
		if seen[ordered] {
			continue
		}
		seen[ordered] = true
		emit(p, q)
		emit(q, p)
	}
	return out
}
