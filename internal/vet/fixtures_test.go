package vet

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadDiskFixture loads one of the on-disk fixture mini-modules under
// testdata/fixtures (each is its own module, so repo-module analysis never
// sees them), runs the given analyzers and returns the formatted findings.
func loadDiskFixture(t *testing.T, name string, analyzers ...*Analyzer) []string {
	t.Helper()
	mod, err := LoadModule(filepath.Join("testdata", "fixtures", name))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	diags := RunAnalyzers(mod, analyzers)
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		out = append(out, d.Format(mod.Root))
	}
	return out
}

// expectAllInBadFile asserts the corrected twin (good.go) stayed silent.
func expectAllInBadFile(t *testing.T, got []string) {
	t.Helper()
	for _, g := range got {
		if !strings.HasPrefix(g, "bad.go:") {
			t.Errorf("finding outside bad.go (the corrected twin must stay silent): %s", g)
		}
	}
}

// TestUntrustedSizeFixture seeds the PR 5 MaxPredictions incident class:
// wire-decoded counts sizing allocations unchecked. The last two findings
// are the PR 10 cluster frames in miniature — a shard-map daemon count and
// a model-transfer payload size off a peer's frame.
func TestUntrustedSizeFixture(t *testing.T) {
	got := loadDiskFixture(t, "untrustedsize", UntrustedSize)
	expectAllInBadFile(t, got)
	expectFindings(t, got, []string{
		"[untrusted-size] size n from untrusted source binary.Uint32 reaches make",
		"[untrusted-size] size n from untrusted source binary.Uint16 reaches io.ReadFull",
		"[untrusted-size] size rings from untrusted source binary.Uint32 reaches make",
		"[untrusted-size] size slots from untrusted source binary.Uint64 reaches make",
		"[untrusted-size] size n from untrusted source binary.Uint16 reaches make",
		"[untrusted-size] size size from untrusted source binary.Uint32 reaches make",
	})
}

// TestAtomicMixFixture seeds the accept/drain (atomic writer, plain
// reader) and Submit/Health (locked writer, unlocked access) race classes.
func TestAtomicMixFixture(t *testing.T) {
	got := loadDiskFixture(t, "atomicmix", AtomicMix)
	expectAllInBadFile(t, got)
	expectFindings(t, got, []string{
		"[atomic-mix] field Gate.draining is accessed via sync/atomic at bad.go:20 but by a plain load here",
		"[atomic-mix] field Buffer.pending is written under fixture.Buffer.mu at bad.go:35 but read here without it",
		"[atomic-mix] field Buffer.pending is written under fixture.Buffer.mu at bad.go:35 but written here without it",
	})
}

// TestGoroutineLifecycleFixture seeds the leaked-goroutine class (spawned
// loops nothing joins, signals, or annotates), the PR 9 quit-signalled-
// but-unjoined class (stoppable loops whose exit nothing can wait for),
// and the PR 8 unjittered-retry class (unbounded fixed-cadence sleep loops
// with no quit check). good.go holds the accepted twins — joined
// goroutines (including quit-signalled ones joined through a done field
// channel a separate Drain method receives from), bounded retries,
// computed backoff, select-stoppable ticks — the analyzer must stay silent
// on.
func TestGoroutineLifecycleFixture(t *testing.T) {
	got := loadDiskFixture(t, "goroutine", GoroutineLifecycle)
	expectAllInBadFile(t, got)
	expectFindings(t, got, []string{
		"[goroutine-lifecycle] goroutine is not tied to a WaitGroup",
		"[goroutine-lifecycle] goroutine is not tied to a WaitGroup",
		"[goroutine-lifecycle] goroutine is quit-signalled but never joined",
		"[goroutine-lifecycle] goroutine is quit-signalled but never joined",
		"[goroutine-lifecycle] unbounded retry loop sleeps a constant interval with no quit/ctx check",
		"[goroutine-lifecycle] unbounded retry loop sleeps a constant interval with no quit/ctx check",
	})
}

// TestLockOrderFixture seeds an AB/BA inversion where one direction is
// hidden behind a helper, so only call-graph folding can see the cycle.
func TestLockOrderFixture(t *testing.T) {
	got := loadDiskFixture(t, "lockorder", LockOrder)
	expectAllInBadFile(t, got)
	expectFindings(t, got, []string{
		"[lock-order] lock-order inversion: fixture.Index.mu acquired while holding fixture.Ledger.mu (via call to reindex)",
		"[lock-order] lock-order inversion: fixture.Ledger.mu acquired while holding fixture.Index.mu",
	})
}
