package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// AtomicMix flags struct fields with an inconsistent synchronization
// discipline — the Submit/Health and accept/drain race classes from the
// PR 5 review. Two rules, both over every access to the unexported fields
// of the package's structs:
//
//  1. A field accessed through sync/atomic in one place and by a plain
//     load or store in another. Mixing the two is a data race even when
//     the plain access sits under a mutex, because the atomic side does
//     not take that mutex.
//
//  2. A field written under a mutex in one place and accessed outside any
//     region of that mutex elsewhere. Lock coverage is call-graph-aware:
//     a helper documented "caller holds mu" counts as covered when every
//     static call site in the module holds mu (or is itself such a
//     helper), so the flushLocked pattern does not false-positive.
//
// Suppressors, all in the "miss rather than invent" direction:
//
//   - accesses through a receiver that is a local, not-yet-published value
//     (constructor initialization before the value escapes);
//   - fields of sync.* / sync/atomic types (self-synchronizing);
//   - exported fields (cross-package accesses are out of scope);
//   - fields with no lock-covered write at all (rule 2 cannot tell
//     single-goroutine state from a missing lock, so it stays silent).
//
// Justified exceptions go in the baseline with a comment.
var AtomicMix = &Analyzer{
	Name: "atomic-mix",
	Doc:  "one synchronization discipline per struct field (atomic xor plain, locked xor not)",
	Run:  runAtomicMix,
}

// fieldAccess is one syntactic access to a tracked field.
type fieldAccess struct {
	pos         token.Pos
	pkg         *Package
	fn          *types.Func // enclosing declared function (nil in a literal)
	write       bool
	atomic      bool // performed through a sync/atomic function
	unpublished bool // receiver is a local value that has not escaped yet
	direct      *classSet
	topLevel    bool // outside any function literal (fn coverage applies)
}

func runAtomicMix(pass *Pass) {
	fields := packageStructFields(pass.Pkg)
	if len(fields) == 0 {
		return
	}
	am := newAtomicMixer(pass.Facts)
	accesses := make(map[*types.Var][]fieldAccess)
	for _, fd := range funcDecls(pass.Pkg) {
		if fd.Body == nil {
			continue
		}
		fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		am.collectAccesses(pass.Pkg, fd, fn, fields, accesses)
	}

	names := make([]*types.Var, 0, len(accesses))
	for f := range accesses {
		names = append(names, f)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Pos() < names[j].Pos() })
	for _, f := range names {
		accs := accesses[f]
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		am.checkField(pass, fields[f], accs)
	}
}

// checkField applies both mixing rules to one field's accesses.
func (am *atomicMixer) checkField(pass *Pass, display string, accs []fieldAccess) {
	var firstAtomic *fieldAccess
	for i := range accs {
		if accs[i].atomic {
			firstAtomic = &accs[i]
			break
		}
	}

	// Rule 1: atomic somewhere, plain elsewhere.
	if firstAtomic != nil {
		for i := range accs {
			a := &accs[i]
			if a.atomic || a.unpublished {
				continue
			}
			kind := "load"
			if a.write {
				kind = "store"
			}
			pass.Reportf(a.pos,
				"field %s is accessed via sync/atomic at %s but by a plain %s here (one discipline per field)",
				display, am.relPos(firstAtomic.pkg, firstAtomic.pos), kind)
		}
		return // rule 2 would double-report the same sites
	}

	// Rule 2: written under a mutex somewhere, accessed outside it elsewhere.
	// A class becomes a guard candidate only on strong evidence that the
	// author meant it to guard this field: a write directly inside one of
	// its regions (an explicit lock in the same function), or propagated
	// coverage by a mutex living on the same struct as the field. Coverage
	// merely inherited from distant callers of an unrelated struct (a stack
	// cursor whose methods happen to run under a client's lock) nominates
	// nothing.
	ownerPrefix := pass.Pkg.Types.Name() + "." + strings.SplitN(display, ".", 2)[0] + "."
	guards := make(map[string]bool)
	covs := make([]*classSet, len(accs))
	for i := range accs {
		a := &accs[i]
		if a.unpublished {
			continue
		}
		covs[i] = a.direct
		if a.topLevel && a.fn != nil {
			covs[i] = covs[i].union(am.fnCoverage(a.fn))
		}
		if a.write {
			for c := range a.direct.m {
				guards[c] = true
			}
			for c := range covs[i].m {
				if strings.HasPrefix(c, ownerPrefix) {
					guards[c] = true
				}
			}
		}
	}
	if len(guards) == 0 {
		return
	}
	// Consistent discipline: some candidate covers every access.
	for class := range guards {
		all := true
		for i := range accs {
			if !accs[i].unpublished && !covs[i].has(class) {
				all = false
				break
			}
		}
		if all {
			return
		}
	}
	// Dominant guard: the candidate covering the most accesses (ties break
	// lexicographically for deterministic output).
	type scored struct {
		class string
		n     int
	}
	var best scored
	for class := range guards {
		n := 0
		for i := range accs {
			if accs[i].unpublished || covs[i].has(class) {
				n++
			}
		}
		if n > best.n || (n == best.n && (best.class == "" || class < best.class)) {
			best = scored{class, n}
		}
	}
	var example string
	for i := range accs {
		a := &accs[i]
		if !a.unpublished && a.write && covs[i] != nil && !covs[i].universal && covs[i].m[best.class] {
			example = am.relPos(a.pkg, a.pos)
			break
		}
	}
	for i := range accs {
		a := &accs[i]
		if a.unpublished || covs[i].has(best.class) {
			continue
		}
		kind := "read"
		if a.write {
			kind = "written"
		}
		pass.Reportf(a.pos,
			"field %s is written under %s at %s but %s here without it (lock it, or make every access atomic)",
			display, best.class, example, kind)
	}
}

// ---------------------------------------------------------------------------
// Access collection.

// collectAccesses records every access to a tracked field inside fd.
func (am *atomicMixer) collectAccesses(pkg *Package, fd *ast.FuncDecl, fn *types.Func,
	fields map[*types.Var]string, out map[*types.Var][]fieldAccess) {
	unpub := am.unpublishedLocals(pkg, fd)

	var visit func(body *ast.BlockStmt, topLevel bool)
	visit = func(body *ast.BlockStmt, topLevel bool) {
		regions := am.regionsOf(pkg, body)
		atomicSels := make(map[*ast.SelectorExpr]bool)
		writeSels := make(map[*ast.SelectorExpr]bool)
		markWrite := func(e ast.Expr) {
			if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
				writeSels[sel] = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if isAtomicCall(pkg, n) {
					for _, arg := range n.Args {
						if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
							if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
								atomicSels[sel] = true
							}
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					markWrite(lhs)
				}
			case *ast.IncDecStmt:
				markWrite(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					// The address escapes; treat as a write unless it feeds a
					// sync/atomic call (classified above).
					markWrite(n.X)
				}
			}
			return true
		})
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				visit(n.Body, false)
				return false
			case *ast.SelectorExpr:
				sel, ok := pkg.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				fv, ok := sel.Obj().(*types.Var)
				if !ok {
					return true
				}
				if _, tracked := fields[fv]; !tracked {
					return true
				}
				a := fieldAccess{
					pos:      n.Sel.Pos(),
					pkg:      pkg,
					fn:       fn,
					write:    writeSels[n],
					atomic:   atomicSels[n],
					direct:   classesCovering(regions, n.Pos()),
					topLevel: topLevel,
				}
				if base, ok := ast.Unparen(baseOf(n)).(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[base].(*types.Var); ok && unpub[v] {
						a.unpublished = true
					}
				}
				out[fv] = append(out[fv], a)
			}
			return true
		})
	}
	visit(fd.Body, true)
}

// packageStructFields returns the trackable fields of the package's struct
// declarations mapped to their "Type.field" display names.
func packageStructFields(pkg *Package) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok || v.Exported() || isSyncType(v.Type()) {
							continue
						}
						out[v] = ts.Name.Name + "." + name.Name
					}
				}
			}
		}
	}
	return out
}

// isSyncType reports a type declared in sync or sync/atomic (Mutex,
// WaitGroup, Once, atomic.Bool, ...): these synchronize themselves.
func isSyncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return p == "sync" || p == "sync/atomic"
}

// isAtomicCall reports a call to a sync/atomic package function.
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// ---------------------------------------------------------------------------
// Lock-coverage sets and their call-graph propagation.

// classSet is a set of lock classes; universal is the ⊤ element ("covered
// whatever the guard is"), used for unpublished-receiver call sites.
type classSet struct {
	universal bool
	m         map[string]bool
}

var universalSet = &classSet{universal: true}
var emptySet = &classSet{}

func (s *classSet) has(c string) bool { return s.universal || s.m[c] }

func (s *classSet) union(o *classSet) *classSet {
	if s.universal || o.universal {
		return universalSet
	}
	if len(o.m) == 0 {
		return s
	}
	if len(s.m) == 0 {
		return o
	}
	m := make(map[string]bool, len(s.m)+len(o.m))
	for c := range s.m {
		m[c] = true
	}
	for c := range o.m {
		m[c] = true
	}
	return &classSet{m: m}
}

func (s *classSet) intersect(o *classSet) *classSet {
	if s.universal {
		return o
	}
	if o.universal {
		return s
	}
	m := make(map[string]bool)
	for c := range s.m {
		if o.m[c] {
			m[c] = true
		}
	}
	if len(m) == 0 {
		return emptySet
	}
	return &classSet{m: m}
}

// classesCovering returns the classes whose regions cover pos.
func classesCovering(regions []lockRegion, pos token.Pos) *classSet {
	var m map[string]bool
	for _, r := range regions {
		if r.covers(pos) {
			if m == nil {
				m = make(map[string]bool)
			}
			m[r.class] = true
		}
	}
	if m == nil {
		return emptySet
	}
	return &classSet{m: m}
}

// atomicMixer carries the per-module caches of the analyzer.
type atomicMixer struct {
	facts   *ModuleFacts
	regions map[*ast.BlockStmt][]lockRegion
	unpub   map[*ast.FuncDecl]map[*types.Var]bool
	cov     map[*types.Func]*classSet
	onStack map[*types.Func]bool
}

func newAtomicMixer(facts *ModuleFacts) *atomicMixer {
	return &atomicMixer{
		facts:   facts,
		regions: make(map[*ast.BlockStmt][]lockRegion),
		unpub:   make(map[*ast.FuncDecl]map[*types.Var]bool),
		cov:     make(map[*types.Func]*classSet),
		onStack: make(map[*types.Func]bool),
	}
}

func (am *atomicMixer) regionsOf(pkg *Package, body *ast.BlockStmt) []lockRegion {
	if got, ok := am.regions[body]; ok {
		return got
	}
	r := lockRegionsIn(pkg, body)
	am.regions[body] = r
	return r
}

// fnCoverage computes the lock classes guaranteed to be held whenever fn
// is entered: the intersection, over every static call site in the module,
// of the classes held at that site (plus the caller's own guaranteed
// coverage). A function with no static call sites — an API entry point —
// has no coverage. Cycles resolve optimistically; a too-generous answer
// only suppresses findings.
func (am *atomicMixer) fnCoverage(fn *types.Func) *classSet {
	if got, ok := am.cov[fn]; ok {
		return got
	}
	if am.onStack[fn] {
		return universalSet
	}
	graph := am.facts.Graph()
	sites := graph.Callers(fn)
	if graph.NodeOf(fn) == nil || len(sites) == 0 {
		am.cov[fn] = emptySet
		return emptySet
	}
	am.onStack[fn] = true
	defer func() { am.onStack[fn] = false }()

	cov := universalSet
	for _, site := range sites {
		var sc *classSet
		switch {
		case site.InFuncLit || site.Async:
			sc = emptySet // runs outside the caller's regions
		case am.siteReceiverUnpublished(site):
			sc = universalSet
		default:
			caller := site.Caller
			sc = classesCovering(am.regionsOf(caller.Pkg, caller.Decl.Body), site.Pos)
			sc = sc.union(am.fnCoverage(caller.Fn))
		}
		cov = cov.intersect(sc)
		if !cov.universal && len(cov.m) == 0 {
			break
		}
	}
	am.cov[fn] = cov
	return cov
}

// siteReceiverUnpublished reports a method call whose receiver is a local,
// not-yet-published value of the caller (constructor wiring: the callee
// cannot race with anything).
func (am *atomicMixer) siteReceiverUnpublished(site *CallSite) bool {
	sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	caller := site.Caller
	v, ok := caller.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return am.unpublishedLocals(caller.Pkg, caller.Decl)[v]
}

// unpublishedLocals finds the locals of fd initialized from a fresh value
// (composite literal, &composite, new, make, a same-package New*
// constructor, or plain var declaration). They suppress findings only, so
// possible later escapes — and a New* that hands out shared state — are
// acceptable inaccuracies.
func (am *atomicMixer) unpublishedLocals(pkg *Package, fd *ast.FuncDecl) map[*types.Var]bool {
	if got, ok := am.unpub[fd]; ok {
		return got
	}
	out := make(map[*types.Var]bool)
	fresh := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return e.Op == token.AND && ok
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if _, builtin := pkg.Info.Uses[id].(*types.Builtin); builtin {
					return id.Name == "new" || id.Name == "make"
				}
				if f, ok := pkg.Info.Uses[id].(*types.Func); ok &&
					f.Pkg() == pkg.Types && strings.HasPrefix(f.Name(), "New") {
					return true
				}
			}
		}
		return false
	}
	if fd.Body != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || !fresh(n.Rhs[i]) {
						continue
					}
					if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
						out[v] = true
					}
				}
			case *ast.DeclStmt:
				gd, ok := n.Decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					return true
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != 0 {
						continue // zero-value declarations only
					}
					for _, name := range vs.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							out[v] = true
						}
					}
				}
			}
			return true
		})
	}
	am.unpub[fd] = out
	return out
}

// relPos formats a cross-reference position as root-relative file:line.
func (am *atomicMixer) relPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(am.facts.Mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}
