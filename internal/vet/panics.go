package vet

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// internalPanicPrefix marks a panic as a documented internal-invariant
// violation: a condition the library itself guarantees can never hold, so
// reaching it means Pythia has a bug (not that the caller misused the API).
const internalPanicPrefix = "pythia: internal"

// PanicPolicy forbids panic in library packages (everything outside cmd/ and
// examples/) unless the panic message is a string constant prefixed
// "pythia: internal" — the marker for documented invariant violations.
// API-misuse panics (argument validation, mode confusion) must either become
// error returns or be individually accepted in vet-baseline.txt with a
// justification.
var PanicPolicy = &Analyzer{
	Name: "panic-policy",
	Doc:  "library panics must be documented invariant violations",
	Run:  runPanicPolicy,
}

func runPanicPolicy(pass *Pass) {
	if !isLibraryPackage(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := pass.Pkg.Info.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			msg, constant := panicMessage(pass, call.Args[0])
			switch {
			case !constant:
				pass.Reportf(call.Pos(), "panic with non-constant message in library code (use a %q-prefixed literal or return an error)", internalPanicPrefix)
			case !strings.HasPrefix(msg, internalPanicPrefix):
				pass.Reportf(call.Pos(), "panic %q in library code is not marked %q (make it an invariant panic or return an error)", truncate(msg, 40), internalPanicPrefix)
			}
			return true
		})
	}
}

// panicMessage extracts the leading string constant of a panic argument:
// a literal, a literal concatenation, or the format string of fmt.Sprintf /
// fmt.Errorf. constant is false when no leading literal can be determined.
func panicMessage(pass *Pass, arg ast.Expr) (msg string, constant bool) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.BasicLit:
		if s, err := strconv.Unquote(e.Value); err == nil {
			return s, true
		}
	case *ast.BinaryExpr:
		// "prefix" + dynamic: judge by the leftmost operand.
		return panicMessage(pass, e.X)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok &&
					pn.Imported().Path() == "fmt" && len(e.Args) > 0 &&
					(sel.Sel.Name == "Sprintf" || sel.Sel.Name == "Errorf" || sel.Sel.Name == "Sprint") {
					return panicMessage(pass, e.Args[0])
				}
			}
		}
	}
	return "", false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
