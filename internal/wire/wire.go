// Package wire defines pythiad's binary protocol: the framing and the
// encode/decode routines for every message a client runtime exchanges with a
// networked oracle daemon (cmd/pythiad, internal/server, pythia/client).
//
// A connection carries a stream of length-prefixed frames:
//
//	uint32 BE  n        total frame body length (type byte + payload), 1..MaxFrame
//	byte       type     frame type (Type constants)
//	n-1 bytes  payload  fixed-layout fields, big-endian; strings are uint16
//	                    length-prefixed UTF-8
//
// The conversation starts with Hello/HelloOK (version negotiation); after
// that the client opens per-(tenant, thread) sessions and submits events /
// queries predictions on them. Submit and SubmitBatch are one-way — the
// server answers nothing on success, which is what makes pipelined batch
// submission cheap; every other request frame is answered by exactly one
// response frame (its success type, or Error), in request order.
//
// Encode routines are append-style and allocation-free when the caller
// reuses its buffer; decode routines never allocate beyond the decoded
// values themselves and never trust a length field further than the bytes
// actually present (a torn or hostile frame yields an error, not a panic or
// an oversized allocation). The request hot path (Submit/SubmitBatch/
// PredictAt) allocates nothing in either direction.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/predictor"
)

// Version is the protocol version this build speaks. A server refuses a
// Hello carrying a different major version with CodeBadVersion.
const Version uint16 = 1

// helloMagic guards against a non-pythia client dialing the port: it is the
// first field of the first frame ("PYTH").
const helloMagic uint32 = 0x50595448

// MaxFrame caps the total frame body length (type byte + payload). Both
// sides refuse larger frames before allocating anything, so a hostile
// length prefix cannot drive an oversized allocation.
const MaxFrame = 1 << 22

// MaxPredictions is the largest PredictSequence count whose response still
// fits in one frame: each prediction is 24 bytes, after the count word and
// the frame type byte. Servers clamp the requested count to this bound so
// a hostile 8-byte request frame cannot demand an unbounded allocation —
// the same guarantee MaxFrame gives on the decode side.
const MaxPredictions = (MaxFrame - 5) / 24

// Type identifies a frame.
type Type uint8

// Frame types. Requests flow client to server; responses server to client.
const (
	THello           Type = 1  // c->s: magic, version
	THelloOK         Type = 2  // s->c: version
	TOpenSession     Type = 3  // c->s: tid, flags, tenant
	TSessionOpened   Type = 4  // s->c: session, hasPredictor, state [, event table]
	TSubmit          Type = 5  // c->s (one-way): session, event id
	TSubmitBatch     Type = 6  // c->s (one-way): session, n, n event ids
	TPredictAt       Type = 7  // c->s: session, distance
	TPrediction      Type = 8  // s->c: ok, prediction
	TPredictSequence Type = 9  // c->s: session, n
	TPredictions     Type = 10 // s->c: k, k predictions
	THealth          Type = 11 // c->s: tenant ("" = whole server)
	THealthInfo      Type = 12 // s->c: state, oracle count, counters, cause
	TCloseSession    Type = 13 // c->s: session
	TSessionClosed   Type = 14 // s->c: session
	TError           Type = 15 // s->c: code, message
	TShmSetup        Type = 16 // c->s: ring geometry, segment size, segment path
	TShmSetupOK      Type = 17 // s->c: rings accepted
	TShmBind         Type = 18 // c->s: session, ring index
	TShmBound        Type = 19 // s->c: session, ring index
	TSubscribe       Type = 20 // c->s: session, horizon, refresh cadence
	TSubscribed      Type = 21 // s->c: session
	TResume          Type = 22 // c->s: resume token (must be the first frame after Hello)
	TResumed         Type = 23 // s->c: per-session applied counters of the parked connection
	TReplay          Type = 24 // c->s: session, base sequence, event ids (dedup'd server-side)
	TReplayed        Type = 25 // s->c: session, applied counter after the replay
	THeartbeat       Type = 26 // c->s: empty keepalive probe
	THeartbeatAck    Type = 27 // s->c: empty keepalive answer
	TDetach          Type = 28 // c->s (one-way): forget the resume token; close is final
	TModelInfo       Type = 29 // c->s: tenant
	TModelInfoR      Type = 30 // s->c: lifecycle state, serving generation, counters
	TPromote         Type = 31 // c->s: tenant (force-promote the shadow model)
	TPromoted        Type = 32 // s->c: minted generation
	TRollback        Type = 33 // c->s: tenant (force-rollback to the previous generation)
	TRolledBack      Type = 34 // s->c: minted generation
	TShardMap        Type = 35 // c->s: caller's cached epoch (daemons gossip epochs with it too)
	TShardMapR       Type = 36 // s->c: epoch, replica count, daemon addresses
	TFetchModel      Type = 37 // c->s: tenant (pull the newest committed model generation)
	TOfferModel      Type = 38 // s->c / d->d: tenant, generation, source, serialized model
	TModelAccepted   Type = 39 // s->c: last-generation-wins verdict on an offered model
)

// String names the frame type.
func (t Type) String() string {
	switch t {
	case THello:
		return "Hello"
	case THelloOK:
		return "HelloOK"
	case TOpenSession:
		return "OpenSession"
	case TSessionOpened:
		return "SessionOpened"
	case TSubmit:
		return "Submit"
	case TSubmitBatch:
		return "SubmitBatch"
	case TPredictAt:
		return "PredictAt"
	case TPrediction:
		return "Prediction"
	case TPredictSequence:
		return "PredictSequence"
	case TPredictions:
		return "Predictions"
	case THealth:
		return "Health"
	case THealthInfo:
		return "HealthInfo"
	case TCloseSession:
		return "CloseSession"
	case TSessionClosed:
		return "SessionClosed"
	case TError:
		return "Error"
	case TShmSetup:
		return "ShmSetup"
	case TShmSetupOK:
		return "ShmSetupOK"
	case TShmBind:
		return "ShmBind"
	case TShmBound:
		return "ShmBound"
	case TSubscribe:
		return "Subscribe"
	case TSubscribed:
		return "Subscribed"
	case TResume:
		return "Resume"
	case TResumed:
		return "Resumed"
	case TReplay:
		return "Replay"
	case TReplayed:
		return "Replayed"
	case THeartbeat:
		return "Heartbeat"
	case THeartbeatAck:
		return "HeartbeatAck"
	case TDetach:
		return "Detach"
	case TModelInfo:
		return "ModelInfo"
	case TModelInfoR:
		return "ModelInfoR"
	case TPromote:
		return "Promote"
	case TPromoted:
		return "Promoted"
	case TRollback:
		return "Rollback"
	case TRolledBack:
		return "RolledBack"
	case TShardMap:
		return "ShardMap"
	case TShardMapR:
		return "ShardMapR"
	case TFetchModel:
		return "FetchModel"
	case TOfferModel:
		return "OfferModel"
	case TModelAccepted:
		return "ModelAccepted"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Code classifies a protocol Error frame.
type Code uint16

// Error codes.
const (
	CodeBadFrame       Code = 1 // malformed or unexpected frame; connection-fatal
	CodeBadVersion     Code = 2 // Hello version mismatch; connection-fatal
	CodeUnknownTenant  Code = 3 // no loadable trace for the tenant name
	CodeUnknownSession Code = 4 // frame names a session this connection never opened; connection-fatal
	// CodeDuplicateSession is reserved: servers up to protocol v1 refused a
	// second open of the same (tenant, tid) on one connection with it. The
	// server now retires the stale slot instead (last open wins — a client
	// that lost an OpenSession response must be able to reopen after
	// resume), so the code is kept only so old captures still decode.
	CodeDuplicateSession Code = 5
	CodeSessionLimit     Code = 6 // server-wide session budget exhausted; retry later
	CodeConnLimit        Code = 7 // server-wide connection budget exhausted; connection-fatal
	CodeDraining         Code = 8 // server is draining; no new sessions
	CodeInternal         Code = 9 // server-side failure opening the session
	// CodeShmSetup reports a refused shared-memory negotiation (bad
	// geometry, unmappable segment, shm unsupported). Non-fatal: the client
	// keeps the socket it negotiated on and falls back to socket transport.
	CodeShmSetup Code = 10
	// CodeRetryLater sheds load: the server refused the request but the
	// connection stays healthy; the Error payload may carry a retry-after
	// hint in milliseconds (ParseErrorRetry). Never sent for Submit.
	CodeRetryLater Code = 11
	// CodeNoResume answers a TResume whose token is unknown or expired.
	// Non-fatal: the client re-opens its sessions fresh on this connection.
	CodeNoResume Code = 12
	// CodeLifecycle refuses a model-lifecycle request: learning is not
	// enabled for the tenant, there is no shadow candidate to promote yet,
	// or no previous generation to roll back to. Non-fatal.
	CodeLifecycle Code = 13
	// CodeWrongShard refuses a session open for a tenant this daemon does
	// not own under the fleet's current shard map. Non-fatal: the client
	// re-fetches the map (TShardMap) and re-routes to the owner; the
	// refusing connection stays usable for tenants this daemon does own.
	CodeWrongShard Code = 14
)

// String names the error code.
func (c Code) String() string {
	switch c {
	case CodeBadFrame:
		return "bad frame"
	case CodeBadVersion:
		return "bad version"
	case CodeUnknownTenant:
		return "unknown tenant"
	case CodeUnknownSession:
		return "unknown session"
	case CodeDuplicateSession:
		return "duplicate session"
	case CodeSessionLimit:
		return "session limit"
	case CodeConnLimit:
		return "connection limit"
	case CodeDraining:
		return "draining"
	case CodeInternal:
		return "internal"
	case CodeShmSetup:
		return "shm setup refused"
	case CodeRetryLater:
		return "retry later"
	case CodeNoResume:
		return "no resumable state"
	case CodeLifecycle:
		return "lifecycle refused"
	case CodeWrongShard:
		return "wrong shard"
	default:
		return fmt.Sprintf("Code(%d)", uint16(c))
	}
}

// OpenSession flag bits.
const (
	// FlagStartAtBeginning seeds the session's predictor at the start of
	// the reference trace (Thread.StartAtBeginning) before any submission.
	FlagStartAtBeginning uint8 = 1 << 0
	// FlagWantEvents asks the server to include the tenant's event
	// descriptor table in the SessionOpened response. Clients set it once
	// per tenant and intern locally from then on.
	FlagWantEvents uint8 = 1 << 1
)

// Oracle degradation states on the wire (match core.State values).
const (
	StateHealthy     uint8 = 0
	StateDegraded    uint8 = 1
	StateQuarantined uint8 = 2
)

// Framing errors. ReadFrame returns io.EOF only for a connection closed
// cleanly between frames; a frame torn mid-body comes back as
// io.ErrUnexpectedEOF.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrEmptyFrame    = errors.New("wire: zero-length frame")
	ErrMalformed     = errors.New("wire: malformed frame payload")
	ErrBadMagic      = errors.New("wire: bad hello magic")
)

// ReadFrame reads one frame from br, reusing *buf as the body buffer
// (growing it at most to MaxFrame). The returned payload aliases *buf and
// is valid until the next ReadFrame with the same buffer.
// pythia:hotpath — one call per request on the serving path.
func ReadFrame(br *bufio.Reader, buf *[]byte) (Type, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, ErrEmptyFrame
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return Type(body[0]), body[1:], nil
}

// WriteFrame writes one frame (header, type byte, payload) to bw. The
// caller flushes; batching consecutive responses into one flush is the
// server's write-batching discipline.
// pythia:hotpath — one call per response on the serving path.
func WriteFrame(bw *bufio.Writer, t Type, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	// The header goes through WriteByte so no short-lived buffer escapes
	// into the writer: this function must not allocate.
	n := uint32(len(payload) + 1)
	if err := bw.WriteByte(byte(n >> 24)); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(n >> 16)); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(n >> 8)); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(n)); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(t)); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// ---------------------------------------------------------------------------
// Append-style encoders. All return the extended buffer; pass buf[:0] of a
// reused buffer for allocation-free encoding.

func appendU16(buf []byte, v uint16) []byte { return append(buf, byte(v>>8), byte(v)) }

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendString encodes a uint16 length-prefixed string, truncating at 64 KiB
// (only free-form diagnostics — causes, messages — can get near that).
func appendString(buf []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	buf = appendU16(buf, uint16(len(s)))
	return append(buf, s...)
}

// Hello flag bits.
const (
	// HelloFlagResume asks the server for a resume token: if granted, the
	// HelloOK response carries a nonzero token the client can present in a
	// TResume frame on a future connection to adopt its parked sessions.
	HelloFlagResume uint8 = 1 << 0
)

// AppendHello encodes a Hello payload.
func AppendHello(buf []byte, flags uint8) []byte {
	buf = appendU32(buf, helloMagic)
	buf = appendU16(buf, Version)
	return append(buf, flags)
}

// AppendHelloOK encodes a HelloOK payload with no resume grant (token 0).
func AppendHelloOK(buf []byte) []byte { return appendU16(buf, Version) }

// AppendHelloOKResume encodes a HelloOK payload granting a resume token.
// windowMs is how long a dropped connection's sessions stay parked.
func AppendHelloOKResume(buf []byte, token uint64, windowMs uint32) []byte {
	buf = appendU16(buf, Version)
	buf = appendU64(buf, token)
	return appendU32(buf, windowMs)
}

// OpenSession is the decoded form of a TOpenSession payload.
type OpenSession struct {
	TID    int32
	Flags  uint8
	Tenant string
}

// AppendOpenSession encodes an OpenSession payload.
func AppendOpenSession(buf []byte, o OpenSession) []byte {
	buf = appendU32(buf, uint32(o.TID))
	buf = append(buf, o.Flags)
	return appendString(buf, o.Tenant)
}

// SessionOpened is the decoded form of a TSessionOpened payload. Events is
// nil unless the request carried FlagWantEvents.
type SessionOpened struct {
	Session      uint32
	HasPredictor bool
	State        uint8
	Events       []string
}

// AppendSessionOpened encodes a SessionOpened payload.
func AppendSessionOpened(buf []byte, so SessionOpened) []byte {
	buf = appendU32(buf, so.Session)
	hp := byte(0)
	if so.HasPredictor {
		hp = 1
	}
	buf = append(buf, hp, so.State)
	if so.Events == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = appendU32(buf, uint32(len(so.Events)))
	for _, e := range so.Events {
		buf = appendString(buf, e)
	}
	return buf
}

// AppendSubmit encodes a Submit payload.
// pythia:hotpath — per-event on the client submit path.
func AppendSubmit(buf []byte, session uint32, id int32) []byte {
	buf = appendU32(buf, session)
	return appendU32(buf, uint32(id))
}

// AppendSubmitBatch encodes a SubmitBatch payload.
// pythia:hotpath — per-flush on the client submit path.
func AppendSubmitBatch(buf []byte, session uint32, ids []int32) []byte {
	buf = appendU32(buf, session)
	buf = appendU32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = appendU32(buf, uint32(id))
	}
	return buf
}

// AppendPredictAt encodes a PredictAt payload.
// pythia:hotpath — per-query on the client predict path.
func AppendPredictAt(buf []byte, session uint32, distance int) []byte {
	buf = appendU32(buf, session)
	return appendU32(buf, uint32(distance))
}

// AppendPredictSequence encodes a PredictSequence payload.
func AppendPredictSequence(buf []byte, session uint32, n int) []byte {
	buf = appendU32(buf, session)
	return appendU32(buf, uint32(n))
}

// appendPredictionBody encodes one prediction's fixed 24-byte layout.
func appendPredictionBody(buf []byte, pr predictor.Prediction) []byte {
	buf = appendU32(buf, uint32(pr.EventID))
	buf = appendU32(buf, uint32(pr.Distance))
	buf = appendU64(buf, math.Float64bits(pr.Probability))
	return appendU64(buf, math.Float64bits(pr.ExpectedNs))
}

// AppendPrediction encodes a Prediction response payload. The float fields
// cross the wire as raw IEEE-754 bits, so a remote prediction is
// bit-identical to the in-process one.
// pythia:hotpath — per-query on the serving path.
func AppendPrediction(buf []byte, pr predictor.Prediction, ok bool) []byte {
	okb := byte(0)
	if ok {
		okb = 1
	}
	buf = append(buf, okb)
	return appendPredictionBody(buf, pr)
}

// AppendPredictions encodes a Predictions response payload.
func AppendPredictions(buf []byte, preds []predictor.Prediction) []byte {
	buf = appendU32(buf, uint32(len(preds)))
	for _, pr := range preds {
		buf = appendPredictionBody(buf, pr)
	}
	return buf
}

// AppendHealth encodes a Health request payload.
func AppendHealth(buf []byte, tenant string) []byte { return appendString(buf, tenant) }

// HealthInfo is the decoded form of a THealthInfo payload: the aggregate
// degradation state of one tenant's live oracles (or of the whole server
// when queried with an empty tenant name).
type HealthInfo struct {
	State              uint8
	Oracles            uint32
	PanicsContained    int64
	BudgetBreaches     int64
	QuarantinedThreads int64
	CheckpointFailures int64
	Promotions         int64
	Rollbacks          int64
	Cause              string
}

// AppendHealthInfo encodes a HealthInfo payload.
func AppendHealthInfo(buf []byte, hi HealthInfo) []byte {
	buf = append(buf, hi.State)
	buf = appendU32(buf, hi.Oracles)
	buf = appendU64(buf, uint64(hi.PanicsContained))
	buf = appendU64(buf, uint64(hi.BudgetBreaches))
	buf = appendU64(buf, uint64(hi.QuarantinedThreads))
	buf = appendU64(buf, uint64(hi.CheckpointFailures))
	buf = appendU64(buf, uint64(hi.Promotions))
	buf = appendU64(buf, uint64(hi.Rollbacks))
	return appendString(buf, hi.Cause)
}

// AppendCloseSession encodes a CloseSession payload.
func AppendCloseSession(buf []byte, session uint32) []byte { return appendU32(buf, session) }

// AppendSessionClosed encodes a SessionClosed payload.
func AppendSessionClosed(buf []byte, session uint32) []byte { return appendU32(buf, session) }

// AppendError encodes an Error payload.
func AppendError(buf []byte, code Code, msg string) []byte {
	buf = appendU16(buf, uint16(code))
	return appendString(buf, msg)
}

// ---------------------------------------------------------------------------
// Decoders. Every decoder validates length fields against the bytes present
// and fails with ErrMalformed (wrapped with the frame name) on any shortfall.

// cursor walks a payload; ok latches false on the first out-of-bounds read.
type cursor struct {
	p   []byte
	off int
	ok  bool
}

func newCursor(p []byte) cursor { return cursor{p: p, ok: true} }

func (c *cursor) u8() byte {
	if !c.ok || c.off+1 > len(c.p) {
		c.ok = false
		return 0
	}
	v := c.p[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if !c.ok || c.off+2 > len(c.p) {
		c.ok = false
		return 0
	}
	v := binary.BigEndian.Uint16(c.p[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if !c.ok || c.off+4 > len(c.p) {
		c.ok = false
		return 0
	}
	v := binary.BigEndian.Uint32(c.p[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if !c.ok || c.off+8 > len(c.p) {
		c.ok = false
		return 0
	}
	v := binary.BigEndian.Uint64(c.p[c.off:])
	c.off += 8
	return v
}

func (c *cursor) str() string {
	n := int(c.u16())
	if !c.ok || c.off+n > len(c.p) {
		c.ok = false
		return ""
	}
	s := string(c.p[c.off : c.off+n])
	c.off += n
	return s
}

// done reports whether the whole payload was consumed cleanly. Trailing
// bytes are malformed: they would mask version-skewed encoders.
func (c *cursor) done() bool { return c.ok && c.off == len(c.p) }

func malformed(frame string) error { return fmt.Errorf("%w: %s", ErrMalformed, frame) }

// ParseHello decodes a THello payload and checks magic and version. The
// flags byte is optional on the wire (absent from version-1 clients that
// predate resume); a missing byte decodes as zero flags.
func ParseHello(p []byte) (version uint16, flags uint8, err error) {
	c := newCursor(p)
	magic := c.u32()
	version = c.u16()
	if c.off < len(p) {
		flags = c.u8()
	}
	if !c.done() {
		return 0, 0, malformed("Hello")
	}
	if magic != helloMagic {
		return 0, 0, ErrBadMagic
	}
	return version, flags, nil
}

// ParseHelloOK decodes a THelloOK payload. token is zero when the server
// granted no resume capability (the short, version-only form).
func ParseHelloOK(p []byte) (version uint16, token uint64, windowMs uint32, err error) {
	c := newCursor(p)
	version = c.u16()
	if c.off < len(p) {
		token = c.u64()
		windowMs = c.u32()
	}
	if !c.done() {
		return 0, 0, 0, malformed("HelloOK")
	}
	return version, token, windowMs, nil
}

// ParseOpenSession decodes a TOpenSession payload.
func ParseOpenSession(p []byte) (OpenSession, error) {
	c := newCursor(p)
	var o OpenSession
	o.TID = int32(c.u32())
	o.Flags = c.u8()
	o.Tenant = c.str()
	if !c.done() {
		return OpenSession{}, malformed("OpenSession")
	}
	return o, nil
}

// ParseSessionOpened decodes a TSessionOpened payload.
func ParseSessionOpened(p []byte) (SessionOpened, error) {
	c := newCursor(p)
	var so SessionOpened
	so.Session = c.u32()
	so.HasPredictor = c.u8() != 0
	so.State = c.u8()
	hasTable := c.u8()
	if hasTable != 0 {
		n := int(c.u32())
		// Each descriptor takes at least its 2-byte length prefix, so a
		// count larger than the remaining bytes/2 cannot be honest.
		if !c.ok || n > (len(p)-c.off)/2 {
			return SessionOpened{}, malformed("SessionOpened")
		}
		so.Events = make([]string, 0, n)
		for i := 0; i < n; i++ {
			so.Events = append(so.Events, c.str())
		}
		if so.Events == nil {
			so.Events = []string{}
		}
	}
	if !c.done() {
		return SessionOpened{}, malformed("SessionOpened")
	}
	return so, nil
}

// ParseSubmit decodes a TSubmit payload.
// pythia:hotpath — per-event on the serving path.
func ParseSubmit(p []byte) (session uint32, id int32, err error) {
	if len(p) != 8 {
		return 0, 0, errMalformedSubmit
	}
	session = binary.BigEndian.Uint32(p)
	id = int32(binary.BigEndian.Uint32(p[4:]))
	return session, id, nil
}

var (
	errMalformedSubmit    = fmt.Errorf("%w: Submit", ErrMalformed)
	errMalformedBatch     = fmt.Errorf("%w: SubmitBatch", ErrMalformed)
	errMalformedPredictAt = fmt.Errorf("%w: PredictAt", ErrMalformed)
)

// Batch is a decoded SubmitBatch id sequence: a view over the frame payload
// (no copy, no allocation).
type Batch struct{ p []byte }

// Len returns the number of ids in the batch.
func (b Batch) Len() int { return len(b.p) / 4 }

// At returns the i-th event id.
// pythia:hotpath — per-event on the serving path.
func (b Batch) At(i int) int32 { return int32(binary.BigEndian.Uint32(b.p[i*4:])) }

// ParseSubmitBatch decodes a TSubmitBatch payload into a zero-copy Batch.
// pythia:hotpath — per-batch on the serving path.
func ParseSubmitBatch(p []byte) (session uint32, b Batch, err error) {
	if len(p) < 8 {
		return 0, Batch{}, errMalformedBatch
	}
	session = binary.BigEndian.Uint32(p)
	n := binary.BigEndian.Uint32(p[4:])
	if uint64(n)*4 != uint64(len(p)-8) {
		return 0, Batch{}, errMalformedBatch
	}
	return session, Batch{p: p[8:]}, nil
}

// ParsePredictAt decodes a TPredictAt payload.
// pythia:hotpath — per-query on the serving path.
func ParsePredictAt(p []byte) (session uint32, distance int, err error) {
	if len(p) != 8 {
		return 0, 0, errMalformedPredictAt
	}
	session = binary.BigEndian.Uint32(p)
	distance = int(int32(binary.BigEndian.Uint32(p[4:])))
	return session, distance, nil
}

// ParsePredictSequence decodes a TPredictSequence payload.
func ParsePredictSequence(p []byte) (session uint32, n int, err error) {
	c := newCursor(p)
	session = c.u32()
	n = int(int32(c.u32()))
	if !c.done() {
		return 0, 0, malformed("PredictSequence")
	}
	return session, n, nil
}

// parsePredictionBody decodes one prediction's fixed 24-byte layout.
func parsePredictionBody(c *cursor) predictor.Prediction {
	var pr predictor.Prediction
	pr.EventID = int32(c.u32())
	pr.Distance = int(int32(c.u32()))
	pr.Probability = math.Float64frombits(c.u64())
	pr.ExpectedNs = math.Float64frombits(c.u64())
	return pr
}

// ParsePrediction decodes a TPrediction payload.
func ParsePrediction(p []byte) (pr predictor.Prediction, ok bool, err error) {
	c := newCursor(p)
	okb := c.u8()
	pr = parsePredictionBody(&c)
	if !c.done() {
		return predictor.Prediction{}, false, malformed("Prediction")
	}
	return pr, okb != 0, nil
}

// ParsePredictions decodes a TPredictions payload.
func ParsePredictions(p []byte) ([]predictor.Prediction, error) {
	c := newCursor(p)
	n := int(c.u32())
	if !c.ok || n > (len(p)-c.off)/24 {
		return nil, malformed("Predictions")
	}
	if n == 0 {
		if !c.done() {
			return nil, malformed("Predictions")
		}
		return nil, nil
	}
	preds := make([]predictor.Prediction, 0, n)
	for i := 0; i < n; i++ {
		preds = append(preds, parsePredictionBody(&c))
	}
	if !c.done() {
		return nil, malformed("Predictions")
	}
	return preds, nil
}

// ParseHealth decodes a THealth payload.
func ParseHealth(p []byte) (tenant string, err error) {
	c := newCursor(p)
	tenant = c.str()
	if !c.done() {
		return "", malformed("Health")
	}
	return tenant, nil
}

// ParseHealthInfo decodes a THealthInfo payload.
func ParseHealthInfo(p []byte) (HealthInfo, error) {
	c := newCursor(p)
	var hi HealthInfo
	hi.State = c.u8()
	hi.Oracles = c.u32()
	hi.PanicsContained = int64(c.u64())
	hi.BudgetBreaches = int64(c.u64())
	hi.QuarantinedThreads = int64(c.u64())
	hi.CheckpointFailures = int64(c.u64())
	hi.Promotions = int64(c.u64())
	hi.Rollbacks = int64(c.u64())
	hi.Cause = c.str()
	if !c.done() {
		return HealthInfo{}, malformed("HealthInfo")
	}
	return hi, nil
}

// ParseCloseSession decodes a TCloseSession payload.
func ParseCloseSession(p []byte) (session uint32, err error) {
	c := newCursor(p)
	session = c.u32()
	if !c.done() {
		return 0, malformed("CloseSession")
	}
	return session, nil
}

// ParseSessionClosed decodes a TSessionClosed payload.
func ParseSessionClosed(p []byte) (session uint32, err error) {
	c := newCursor(p)
	session = c.u32()
	if !c.done() {
		return 0, malformed("SessionClosed")
	}
	return session, nil
}

// AppendErrorRetry encodes an Error payload carrying a retry-after hint in
// milliseconds (used with CodeRetryLater when the server sheds load).
func AppendErrorRetry(buf []byte, code Code, msg string, retryMs uint32) []byte {
	buf = appendU16(buf, uint16(code))
	buf = appendString(buf, msg)
	return appendU32(buf, retryMs)
}

// ParseError decodes a TError payload, tolerating (and discarding) a
// trailing retry-after hint.
func ParseError(p []byte) (code Code, msg string, err error) {
	code, msg, _, err = ParseErrorRetry(p)
	return code, msg, err
}

// ParseErrorRetry decodes a TError payload including the optional trailing
// retry-after hint; retryMs is zero when the short form was sent.
func ParseErrorRetry(p []byte) (code Code, msg string, retryMs uint32, err error) {
	c := newCursor(p)
	code = Code(c.u16())
	msg = c.str()
	if c.off < len(p) {
		retryMs = c.u32()
	}
	if !c.done() {
		return 0, "", 0, malformed("Error")
	}
	return code, msg, retryMs, nil
}

// ---------------------------------------------------------------------------
// Shared-memory negotiation (transport tier 3). The client creates the
// segment, names it in ShmSetup over its socket connection, then binds
// sessions to rings; the server decodes event ids straight out of the mapped
// rings from then on. Everything in these frames — geometry, sizes, the
// path itself — is untrusted input on the receiving side.

// ShmSetup is the decoded form of a TShmSetup payload: the ring geometry
// and the segment file carrying it. SegSize is redundant with the geometry
// (the server recomputes and compares) — a cheap cross-check that the two
// sides agree on layout arithmetic before either maps a byte.
type ShmSetup struct {
	Rings   uint32
	Slots   uint32
	PredCap uint32
	SegSize uint64
	Path    string
}

// AppendShmSetup encodes a ShmSetup payload.
func AppendShmSetup(buf []byte, ss ShmSetup) []byte {
	buf = appendU32(buf, ss.Rings)
	buf = appendU32(buf, ss.Slots)
	buf = appendU32(buf, ss.PredCap)
	buf = appendU64(buf, ss.SegSize)
	return appendString(buf, ss.Path)
}

// ParseShmSetup decodes a TShmSetup payload.
func ParseShmSetup(p []byte) (ShmSetup, error) {
	c := newCursor(p)
	var ss ShmSetup
	ss.Rings = c.u32()
	ss.Slots = c.u32()
	ss.PredCap = c.u32()
	ss.SegSize = c.u64()
	ss.Path = c.str()
	if !c.done() {
		return ShmSetup{}, malformed("ShmSetup")
	}
	return ss, nil
}

// AppendShmSetupOK encodes a ShmSetupOK payload (the ring count the server
// mapped, echoing the accepted geometry).
func AppendShmSetupOK(buf []byte, rings uint32) []byte { return appendU32(buf, rings) }

// ParseShmSetupOK decodes a TShmSetupOK payload.
func ParseShmSetupOK(p []byte) (rings uint32, err error) {
	c := newCursor(p)
	rings = c.u32()
	if !c.done() {
		return 0, malformed("ShmSetupOK")
	}
	return rings, nil
}

// AppendShmBind encodes a ShmBind payload: route session's submissions
// through ring (an index into the negotiated segment) from now on.
func AppendShmBind(buf []byte, session, ring uint32) []byte {
	buf = appendU32(buf, session)
	return appendU32(buf, ring)
}

// ParseShmBind decodes a TShmBind payload.
func ParseShmBind(p []byte) (session, ring uint32, err error) {
	c := newCursor(p)
	session = c.u32()
	ring = c.u32()
	if !c.done() {
		return 0, 0, malformed("ShmBind")
	}
	return session, ring, nil
}

// AppendShmBound encodes a ShmBound payload.
func AppendShmBound(buf []byte, session, ring uint32) []byte {
	buf = appendU32(buf, session)
	return appendU32(buf, ring)
}

// ParseShmBound decodes a TShmBound payload.
func ParseShmBound(p []byte) (session, ring uint32, err error) {
	c := newCursor(p)
	session = c.u32()
	ring = c.u32()
	if !c.done() {
		return 0, 0, malformed("ShmBound")
	}
	return session, ring, nil
}

// Subscribe asks the server to keep the session's ring prediction slot
// fresh: after every `Every` consumed events it republishes
// PredictSequence(Horizon) into the seqlock'd slot, so a co-located client
// reads the latest predictions without a round trip.
type Subscribe struct {
	Session uint32
	Horizon uint32 // predictions per refresh (clamped to the ring's PredCap)
	Every   uint32 // refresh cadence in consumed events (0 = every decode pass)
}

// AppendSubscribe encodes a Subscribe payload.
func AppendSubscribe(buf []byte, s Subscribe) []byte {
	buf = appendU32(buf, s.Session)
	buf = appendU32(buf, s.Horizon)
	return appendU32(buf, s.Every)
}

// ParseSubscribe decodes a TSubscribe payload.
func ParseSubscribe(p []byte) (Subscribe, error) {
	c := newCursor(p)
	var s Subscribe
	s.Session = c.u32()
	s.Horizon = c.u32()
	s.Every = c.u32()
	if !c.done() {
		return Subscribe{}, malformed("Subscribe")
	}
	return s, nil
}

// AppendSubscribed encodes a Subscribed payload.
func AppendSubscribed(buf []byte, session uint32) []byte { return appendU32(buf, session) }

// ParseSubscribed decodes a TSubscribed payload.
func ParseSubscribed(p []byte) (session uint32, err error) {
	c := newCursor(p)
	session = c.u32()
	if !c.done() {
		return 0, malformed("Subscribed")
	}
	return session, nil
}

// ---------------------------------------------------------------------------
// Session resume (robust serving). A client that negotiated a resume token
// at Hello time can, after losing its connection, present the token as the
// first frame of a fresh connection; the server re-attaches the parked
// sessions and reports how many events it applied per session, so the
// client can replay only its unacked tail. Replay frames carry explicit
// base sequence numbers and the server drops anything at or below its
// applied counter — replayed events are applied exactly once.

// AppendResume encodes a Resume payload.
func AppendResume(buf []byte, token uint64) []byte { return appendU64(buf, token) }

// ParseResume decodes a TResume payload.
func ParseResume(p []byte) (token uint64, err error) {
	c := newCursor(p)
	token = c.u64()
	if !c.done() {
		return 0, malformed("Resume")
	}
	return token, nil
}

// ResumedSession reports one re-attached session: its id (unchanged from
// the original connection) and the server's applied event counter — the
// number of events it has fed into the session since it was opened.
type ResumedSession struct {
	Session uint32
	Applied uint64
}

// AppendResumed encodes a Resumed payload.
func AppendResumed(buf []byte, sessions []ResumedSession) []byte {
	buf = appendU32(buf, uint32(len(sessions)))
	for _, rs := range sessions {
		buf = appendU32(buf, rs.Session)
		buf = appendU64(buf, rs.Applied)
	}
	return buf
}

// ParseResumed decodes a TResumed payload. The count is bounded by the
// bytes actually present before any allocation.
func ParseResumed(p []byte) ([]ResumedSession, error) {
	c := newCursor(p)
	n := int(c.u32())
	// Each entry is exactly 12 bytes; a larger count cannot be honest.
	if !c.ok || n > (len(p)-c.off)/12 {
		return nil, malformed("Resumed")
	}
	sessions := make([]ResumedSession, 0, n)
	for i := 0; i < n; i++ {
		var rs ResumedSession
		rs.Session = c.u32()
		rs.Applied = c.u64()
		sessions = append(sessions, rs)
	}
	if !c.done() {
		return nil, malformed("Resumed")
	}
	return sessions, nil
}

// AppendReplay encodes a Replay payload: ids are the session's events with
// sequence numbers base, base+1, … (1-based per server session).
func AppendReplay(buf []byte, session uint32, base uint64, ids []int32) []byte {
	buf = appendU32(buf, session)
	buf = appendU64(buf, base)
	buf = appendU32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = appendU32(buf, uint32(id))
	}
	return buf
}

var errMalformedReplay = fmt.Errorf("%w: Replay", ErrMalformed)

// ParseReplay decodes a TReplay payload into a zero-copy Batch view.
func ParseReplay(p []byte) (session uint32, base uint64, b Batch, err error) {
	if len(p) < 16 {
		return 0, 0, Batch{}, errMalformedReplay
	}
	session = binary.BigEndian.Uint32(p)
	base = binary.BigEndian.Uint64(p[4:])
	n := binary.BigEndian.Uint32(p[12:])
	if uint64(n)*4 != uint64(len(p)-16) {
		return 0, 0, Batch{}, errMalformedReplay
	}
	return session, base, Batch{p: p[16:]}, nil
}

// AppendReplayed encodes a Replayed payload.
func AppendReplayed(buf []byte, session uint32, applied uint64) []byte {
	buf = appendU32(buf, session)
	return appendU64(buf, applied)
}

// ParseReplayed decodes a TReplayed payload.
func ParseReplayed(p []byte) (session uint32, applied uint64, err error) {
	c := newCursor(p)
	session = c.u32()
	applied = c.u64()
	if !c.done() {
		return 0, 0, malformed("Replayed")
	}
	return session, applied, nil
}

// ParseHeartbeat decodes a THeartbeat payload (empty).
func ParseHeartbeat(p []byte) error {
	if len(p) != 0 {
		return malformed("Heartbeat")
	}
	return nil
}

// ParseHeartbeatAck decodes a THeartbeatAck payload (empty).
func ParseHeartbeatAck(p []byte) error {
	if len(p) != 0 {
		return malformed("HeartbeatAck")
	}
	return nil
}

// ParseDetach decodes a TDetach payload (empty).
func ParseDetach(p []byte) error {
	if len(p) != 0 {
		return malformed("Detach")
	}
	return nil
}

// Model lifecycle states on the wire (ModelInfoR.State).
const (
	ModelFrozen   uint8 = 0
	ModelLearning uint8 = 1
	ModelWatching uint8 = 2
)

// ModelInfo is the decoded form of a TModelInfoR payload: one tenant's
// model-lifecycle snapshot.
type ModelInfo struct {
	// Enabled reports whether the tenant's oracle learns online.
	Enabled bool
	// State is ModelFrozen, ModelLearning or ModelWatching.
	State uint8
	// ServingGeneration is the generation number of the serving model.
	ServingGeneration uint64
	// Promotions, Rollbacks and ShadowEpochs are the lifetime counters.
	Promotions   uint64
	Rollbacks    uint64
	ShadowEpochs uint64
	// Retained lists the generation numbers held in memory, serving first.
	Retained []uint64
}

// AppendModelInfo encodes a ModelInfo request payload.
func AppendModelInfo(buf []byte, tenant string) []byte { return appendString(buf, tenant) }

// ParseModelInfo decodes a TModelInfo payload.
func ParseModelInfo(p []byte) (tenant string, err error) {
	c := newCursor(p)
	tenant = c.str()
	if !c.done() {
		return "", malformed("ModelInfo")
	}
	return tenant, nil
}

// AppendModelInfoR encodes a ModelInfoR response payload.
func AppendModelInfoR(buf []byte, mi ModelInfo) []byte {
	enabled := byte(0)
	if mi.Enabled {
		enabled = 1
	}
	buf = append(buf, enabled, mi.State)
	buf = appendU64(buf, mi.ServingGeneration)
	buf = appendU64(buf, mi.Promotions)
	buf = appendU64(buf, mi.Rollbacks)
	buf = appendU64(buf, mi.ShadowEpochs)
	buf = appendU16(buf, uint16(len(mi.Retained)))
	for _, g := range mi.Retained {
		buf = appendU64(buf, g)
	}
	return buf
}

// ParseModelInfoR decodes a TModelInfoR payload.
func ParseModelInfoR(p []byte) (ModelInfo, error) {
	c := newCursor(p)
	var mi ModelInfo
	mi.Enabled = c.u8() != 0
	mi.State = c.u8()
	mi.ServingGeneration = c.u64()
	mi.Promotions = c.u64()
	mi.Rollbacks = c.u64()
	mi.ShadowEpochs = c.u64()
	n := int(c.u16())
	if !c.ok || len(p)-c.off < n*8 {
		return ModelInfo{}, malformed("ModelInfoR")
	}
	if n > 0 {
		mi.Retained = make([]uint64, n)
		for i := range mi.Retained {
			mi.Retained[i] = c.u64()
		}
	}
	if !c.done() {
		return ModelInfo{}, malformed("ModelInfoR")
	}
	return mi, nil
}

// AppendPromote encodes a Promote request payload.
func AppendPromote(buf []byte, tenant string) []byte { return appendString(buf, tenant) }

// ParsePromote decodes a TPromote payload.
func ParsePromote(p []byte) (tenant string, err error) {
	c := newCursor(p)
	tenant = c.str()
	if !c.done() {
		return "", malformed("Promote")
	}
	return tenant, nil
}

// AppendPromoted encodes a Promoted response payload.
func AppendPromoted(buf []byte, gen uint64) []byte { return appendU64(buf, gen) }

// ParsePromoted decodes a TPromoted payload.
func ParsePromoted(p []byte) (gen uint64, err error) {
	c := newCursor(p)
	gen = c.u64()
	if !c.done() {
		return 0, malformed("Promoted")
	}
	return gen, nil
}

// AppendRollback encodes a Rollback request payload.
func AppendRollback(buf []byte, tenant string) []byte { return appendString(buf, tenant) }

// ParseRollback decodes a TRollback payload.
func ParseRollback(p []byte) (tenant string, err error) {
	c := newCursor(p)
	tenant = c.str()
	if !c.done() {
		return "", malformed("Rollback")
	}
	return tenant, nil
}

// AppendRolledBack encodes a RolledBack response payload.
func AppendRolledBack(buf []byte, gen uint64) []byte { return appendU64(buf, gen) }

// ParseRolledBack decodes a TRolledBack payload.
func ParseRolledBack(p []byte) (gen uint64, err error) {
	c := newCursor(p)
	gen = c.u64()
	if !c.done() {
		return 0, malformed("RolledBack")
	}
	return gen, nil
}

// MaxDaemons caps the daemon count of a decoded shard map. Fleets are tens
// of daemons, not thousands; the clamp keeps a hostile count field from
// sizing an allocation the payload cannot back.
const MaxDaemons = 256

// MaxModelBytes caps the serialized model carried by one TOfferModel frame,
// leaving headroom inside MaxFrame for the frame's own header fields.
const MaxModelBytes = MaxFrame - 512

// ShardMap is the decoded form of a TShardMapR payload: one epoch of the
// fleet's tenant→daemon assignment inputs. Daemons is empty on a daemon
// that is not running in cluster mode.
type ShardMap struct {
	// Epoch versions the assignment; higher epochs win fleet-wide.
	Epoch uint64
	// Replicas is how many warm replicas (beyond the owner) each tenant
	// keeps.
	Replicas uint8
	// Daemons lists every fleet member's advertised address.
	Daemons []string
}

// AppendShardMap encodes a TShardMap request payload: the caller's cached
// epoch (0 when it has none). Daemons use the same frame to gossip epochs.
func AppendShardMap(buf []byte, epoch uint64) []byte { return appendU64(buf, epoch) }

// ParseShardMap decodes a TShardMap payload.
func ParseShardMap(p []byte) (epoch uint64, err error) {
	c := newCursor(p)
	epoch = c.u64()
	if !c.done() {
		return 0, malformed("ShardMap")
	}
	return epoch, nil
}

// AppendShardMapR encodes a TShardMapR response payload.
func AppendShardMapR(buf []byte, sm ShardMap) []byte {
	buf = appendU64(buf, sm.Epoch)
	buf = append(buf, sm.Replicas)
	buf = appendU16(buf, uint16(len(sm.Daemons)))
	for _, d := range sm.Daemons {
		buf = appendString(buf, d)
	}
	return buf
}

// ParseShardMapR decodes a TShardMapR payload. The daemon count is
// untrusted: it is clamped against MaxDaemons and against what the payload
// can actually back (each address costs at least its 2-byte length prefix)
// before it sizes anything.
func ParseShardMapR(p []byte) (ShardMap, error) {
	c := newCursor(p)
	var sm ShardMap
	sm.Epoch = c.u64()
	sm.Replicas = c.u8()
	n := int(c.u16())
	if !c.ok || n > MaxDaemons || n > (len(p)-c.off)/2 {
		return ShardMap{}, malformed("ShardMapR")
	}
	if n > 0 {
		sm.Daemons = make([]string, n)
		for i := range sm.Daemons {
			sm.Daemons[i] = c.str()
		}
	}
	if !c.done() {
		return ShardMap{}, malformed("ShardMapR")
	}
	return sm, nil
}

// ModelOffer is the decoded form of a TOfferModel payload: one tenant's
// newest committed model generation in transit between daemons (either the
// response to a TFetchModel pull or an unsolicited migration/replication
// push).
type ModelOffer struct {
	// Tenant names the model's tenant.
	Tenant string
	// Generation is the checkpoint generation the payload was committed as;
	// receivers resolve conflicts last-generation-wins without decoding.
	Generation uint64
	// Source is the advertised address of the daemon the model came from
	// (recorded as the installed generation's ReplicatedFrom provenance).
	Source string
	// Payload is the tracefile serialization of the model. It aliases the
	// frame read buffer: decode or copy it before the next ReadFrame.
	Payload []byte
}

// AppendFetchModel encodes a TFetchModel request payload.
func AppendFetchModel(buf []byte, tenant string) []byte { return appendString(buf, tenant) }

// ParseFetchModel decodes a TFetchModel payload.
func ParseFetchModel(p []byte) (tenant string, err error) {
	c := newCursor(p)
	tenant = c.str()
	if !c.done() {
		return "", malformed("FetchModel")
	}
	return tenant, nil
}

// AppendOfferModel encodes a TOfferModel payload.
func AppendOfferModel(buf []byte, om ModelOffer) []byte {
	buf = appendString(buf, om.Tenant)
	buf = appendU64(buf, om.Generation)
	buf = appendString(buf, om.Source)
	buf = appendU32(buf, uint32(len(om.Payload)))
	return append(buf, om.Payload...)
}

// ParseOfferModel decodes a TOfferModel payload. The model size is
// untrusted: it is clamped against MaxModelBytes and against the bytes the
// payload actually carries before it bounds the returned slice.
func ParseOfferModel(p []byte) (ModelOffer, error) {
	c := newCursor(p)
	var om ModelOffer
	om.Tenant = c.str()
	om.Generation = c.u64()
	om.Source = c.str()
	n := int(c.u32())
	if !c.ok || n > MaxModelBytes || n > len(p)-c.off {
		return ModelOffer{}, malformed("OfferModel")
	}
	om.Payload = p[c.off : c.off+n]
	c.off += n
	if !c.done() {
		return ModelOffer{}, malformed("OfferModel")
	}
	return om, nil
}

// AppendModelAccepted encodes a TModelAccepted response payload: whether
// the offered generation was installed, and the generation the receiver now
// holds (its own, newer one on a last-generation-wins rejection).
func AppendModelAccepted(buf []byte, accepted bool, haveGen uint64) []byte {
	a := byte(0)
	if accepted {
		a = 1
	}
	buf = append(buf, a)
	return appendU64(buf, haveGen)
}

// ParseModelAccepted decodes a TModelAccepted payload.
func ParseModelAccepted(p []byte) (accepted bool, haveGen uint64, err error) {
	c := newCursor(p)
	accepted = c.u8() != 0
	haveGen = c.u64()
	if !c.done() {
		return false, 0, malformed("ModelAccepted")
	}
	return accepted, haveGen, nil
}
