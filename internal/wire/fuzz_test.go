package wire

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/predictor"
)

// FuzzWireDecode feeds raw byte streams through the frame reader and every
// payload parser. Truncated, torn, and version-skewed inputs must come back
// as errors — never a panic, and never an allocation sized from an
// unvalidated length field. The final check pins the allocation bound: no
// single decode may retain or request more than MaxFrame bytes.
func FuzzWireDecode(f *testing.F) {
	// Seed with one valid encoding of every frame type, plus torn variants.
	seeds := [][]byte{
		AppendHello(nil, HelloFlagResume),
		AppendHelloOK(nil),
		AppendHelloOKResume(nil, 0x1234, 15000),
		AppendOpenSession(nil, OpenSession{TID: 2, Flags: FlagStartAtBeginning | FlagWantEvents, Tenant: "bt"}),
		AppendSessionOpened(nil, SessionOpened{Session: 1, HasPredictor: true, Events: []string{"a", "b"}}),
		AppendSubmit(nil, 1, 42),
		AppendSubmitBatch(nil, 1, []int32{1, 2, 3}),
		AppendPredictAt(nil, 1, 16),
		AppendPredictSequence(nil, 1, 8),
		AppendPrediction(nil, predictor.Prediction{EventID: 3, Probability: 0.5, Distance: 2, ExpectedNs: 100}, true),
		AppendPredictions(nil, []predictor.Prediction{{EventID: 1}, {EventID: 2}}),
		AppendHealth(nil, "bt"),
		AppendHealthInfo(nil, HealthInfo{State: StateDegraded, Cause: "x"}),
		AppendCloseSession(nil, 9),
		AppendSessionClosed(nil, 9),
		AppendError(nil, CodeDraining, "drain"),
		AppendShmSetup(nil, ShmSetup{Rings: 4, Slots: 4096, PredCap: 32, SegSize: 1 << 20, Path: "/dev/shm/pythia-shm-x"}),
		AppendShmSetupOK(nil, 4),
		AppendShmBind(nil, 1, 0),
		AppendShmBound(nil, 1, 0),
		AppendSubscribe(nil, Subscribe{Session: 1, Horizon: 16, Every: 32}),
		AppendSubscribed(nil, 1),
		AppendErrorRetry(nil, CodeRetryLater, "shed", 250),
		AppendResume(nil, 0xfeedface),
		AppendResumed(nil, []ResumedSession{{Session: 0, Applied: 3}, {Session: 2, Applied: 9}}),
		AppendReplay(nil, 1, 4, []int32{5, 6, 7}),
		AppendReplayed(nil, 1, 7),
		AppendModelInfo(nil, "bt"),
		AppendModelInfoR(nil, ModelInfo{Enabled: true, State: ModelLearning, ServingGeneration: 3, Retained: []uint64{3, 2}}),
		AppendPromote(nil, "bt"),
		AppendPromoted(nil, 4),
		AppendRollback(nil, "bt"),
		AppendRolledBack(nil, 5),
		AppendShardMap(nil, 7),
		AppendShardMapR(nil, ShardMap{Epoch: 7, Replicas: 1, Daemons: []string{"127.0.0.1:9137", "127.0.0.1:9138"}}),
		AppendFetchModel(nil, "bt"),
		AppendOfferModel(nil, ModelOffer{Tenant: "bt", Generation: 9, Source: "127.0.0.1:9137", Payload: []byte{1, 2, 3, 4}}),
		AppendModelAccepted(nil, true, 9),
	}
	for t := THello; t <= TModelAccepted; t++ {
		for _, s := range seeds {
			f.Add(uint8(t), frameBytes(t, s))
			if len(s) > 0 {
				f.Add(uint8(t), frameBytes(t, s[:len(s)/2])) // torn payload
			}
		}
	}
	// Version-skewed hello and hostile length prefixes.
	skew := AppendHello(nil, 0)
	skew[5] ^= 0xff // low version byte, not the trailing flags byte
	f.Add(uint8(THello), frameBytes(THello, skew))
	f.Add(uint8(0), []byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add(uint8(0), []byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, firstType uint8, raw []byte) {
		br := bufio.NewReader(bytes.NewReader(raw))
		buf := make([]byte, 0, 512)
		for frames := 0; frames < 64; frames++ {
			typ, payload, err := ReadFrame(br, &buf)
			if err != nil {
				break
			}
			if len(payload)+1 > MaxFrame {
				t.Fatalf("ReadFrame returned %d-byte payload past MaxFrame", len(payload))
			}
			exerciseParsers(t, typ, payload)
			// The first decoded frame also gets parsed as the fuzzer's
			// chosen type, exercising type/payload mismatches.
			if frames == 0 {
				exerciseParsers(t, Type(firstType), payload)
			}
		}
		if cap(buf) > MaxFrame {
			t.Fatalf("frame buffer grew to %d, past MaxFrame", cap(buf))
		}
	})
}

// exerciseParsers runs the payload through the parser for typ; any outcome
// but a panic or an oversized result is acceptable.
func exerciseParsers(t *testing.T, typ Type, payload []byte) {
	t.Helper()
	switch typ {
	case THello:
		_, _, _ = ParseHello(payload)
	case THelloOK:
		_, _, _, _ = ParseHelloOK(payload)
	case TOpenSession:
		_, _ = ParseOpenSession(payload)
	case TSessionOpened:
		so, err := ParseSessionOpened(payload)
		if err == nil && len(so.Events) > len(payload) {
			t.Fatalf("decoded %d event descriptors from a %d-byte payload", len(so.Events), len(payload))
		}
	case TSubmit:
		_, _, _ = ParseSubmit(payload)
	case TSubmitBatch:
		s, b, err := ParseSubmitBatch(payload)
		if err == nil && b.Len() > 0 {
			_ = s
			_ = b.At(0)
			_ = b.At(b.Len() - 1)
		}
	case TPredictAt:
		_, _, _ = ParsePredictAt(payload)
	case TPrediction:
		_, _, _ = ParsePrediction(payload)
	case TPredictSequence:
		_, _, _ = ParsePredictSequence(payload)
	case TPredictions:
		preds, err := ParsePredictions(payload)
		if err == nil && len(preds)*24 > len(payload) {
			t.Fatalf("decoded %d predictions from a %d-byte payload", len(preds), len(payload))
		}
	case THealth:
		_, _ = ParseHealth(payload)
	case THealthInfo:
		_, _ = ParseHealthInfo(payload)
	case TCloseSession:
		_, _ = ParseCloseSession(payload)
	case TSessionClosed:
		_, _ = ParseSessionClosed(payload)
	case TError:
		_, _, _ = ParseError(payload)
	case TShmSetup:
		_, _ = ParseShmSetup(payload)
	case TShmSetupOK:
		_, _ = ParseShmSetupOK(payload)
	case TShmBind:
		_, _, _ = ParseShmBind(payload)
	case TShmBound:
		_, _, _ = ParseShmBound(payload)
	case TSubscribe:
		_, _ = ParseSubscribe(payload)
	case TSubscribed:
		_, _ = ParseSubscribed(payload)
	case TResume:
		_, _ = ParseResume(payload)
	case TResumed:
		rs, err := ParseResumed(payload)
		if err == nil && len(rs)*12 > len(payload) {
			t.Fatalf("decoded %d resumed sessions from a %d-byte payload", len(rs), len(payload))
		}
	case TReplay:
		_, _, b, err := ParseReplay(payload)
		if err == nil && b.Len() > 0 {
			_ = b.At(0)
			_ = b.At(b.Len() - 1)
		}
	case TReplayed:
		_, _, _ = ParseReplayed(payload)
	case THeartbeat:
		_ = ParseHeartbeat(payload)
	case THeartbeatAck:
		_ = ParseHeartbeatAck(payload)
	case TDetach:
		_ = ParseDetach(payload)
	case TModelInfo:
		_, _ = ParseModelInfo(payload)
	case TModelInfoR:
		mi, err := ParseModelInfoR(payload)
		if err == nil && len(mi.Retained)*8 > len(payload) {
			t.Fatalf("decoded %d retained generations from a %d-byte payload", len(mi.Retained), len(payload))
		}
	case TPromote:
		_, _ = ParsePromote(payload)
	case TPromoted:
		_, _ = ParsePromoted(payload)
	case TRollback:
		_, _ = ParseRollback(payload)
	case TRolledBack:
		_, _ = ParseRolledBack(payload)
	case TShardMap:
		_, _ = ParseShardMap(payload)
	case TShardMapR:
		sm, err := ParseShardMapR(payload)
		if err == nil && len(sm.Daemons)*2 > len(payload) {
			t.Fatalf("decoded %d daemon addresses from a %d-byte payload", len(sm.Daemons), len(payload))
		}
	case TFetchModel:
		_, _ = ParseFetchModel(payload)
	case TOfferModel:
		om, err := ParseOfferModel(payload)
		if err == nil && len(om.Payload) > len(payload) {
			t.Fatalf("decoded a %d-byte model from a %d-byte payload", len(om.Payload), len(payload))
		}
	case TModelAccepted:
		_, _, _ = ParseModelAccepted(payload)
	}
}
