package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"repro/internal/predictor"
)

// frameBytes builds the on-wire encoding of one frame.
func frameBytes(t Type, payload []byte) []byte {
	out := make([]byte, 0, 5+len(payload))
	out = appendU32(out, uint32(len(payload)+1))
	out = append(out, byte(t))
	return append(out, payload...)
}

func readOne(t *testing.T, raw []byte) (Type, []byte) {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(raw))
	var buf []byte
	typ, payload, err := ReadFrame(br, &buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return typ, payload
}

func TestFrameRoundTrip(t *testing.T) {
	var out bytes.Buffer
	bw := bufio.NewWriter(&out)
	payload := AppendOpenSession(nil, OpenSession{TID: 3, Flags: FlagStartAtBeginning, Tenant: "bt"})
	if err := WriteFrame(bw, TOpenSession, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	typ, got := readOne(t, out.Bytes())
	if typ != TOpenSession {
		t.Fatalf("type = %v, want OpenSession", typ)
	}
	o, err := ParseOpenSession(got)
	if err != nil {
		t.Fatalf("ParseOpenSession: %v", err)
	}
	if o.TID != 3 || o.Flags != FlagStartAtBeginning || o.Tenant != "bt" {
		t.Fatalf("round trip = %+v", o)
	}
}

func TestReadFrameErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"empty stream", nil, io.EOF},
		{"torn header", []byte{0, 0, 1}, io.ErrUnexpectedEOF},
		{"zero length", []byte{0, 0, 0, 0}, ErrEmptyFrame},
		{"oversized", []byte{0xff, 0xff, 0xff, 0xff}, ErrFrameTooLarge},
		{"torn body", frameBytes(TSubmit, make([]byte, 8))[:7], io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br := bufio.NewReader(bytes.NewReader(tc.raw))
			var buf []byte
			_, _, err := ReadFrame(br, &buf)
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	var raw []byte
	raw = append(raw, frameBytes(TSubmit, AppendSubmit(nil, 1, 7))...)
	raw = append(raw, frameBytes(TSubmit, AppendSubmit(nil, 1, 9))...)
	br := bufio.NewReader(bytes.NewReader(raw))
	buf := make([]byte, 0, 64)
	for i := 0; i < 2; i++ {
		_, payload, err := ReadFrame(br, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if _, _, err := ParseSubmit(payload); err != nil {
			t.Fatalf("frame %d parse: %v", i, err)
		}
	}
	if cap(buf) != 64 {
		t.Fatalf("buffer was reallocated: cap = %d", cap(buf))
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	bw := bufio.NewWriter(io.Discard)
	if err := WriteFrame(bw, TSubmit, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestHello(t *testing.T) {
	v, flags, err := ParseHello(AppendHello(nil, HelloFlagResume))
	if err != nil || v != Version || flags != HelloFlagResume {
		t.Fatalf("ParseHello = %d, %#x, %v", v, flags, err)
	}
	// The flags byte is optional on the wire: a version-1 six-byte Hello
	// decodes with zero flags.
	legacy := AppendHello(nil, 0)[:6]
	v, flags, err = ParseHello(legacy)
	if err != nil || v != Version || flags != 0 {
		t.Fatalf("legacy ParseHello = %d, %#x, %v", v, flags, err)
	}
	bad := AppendHello(nil, 0)
	bad[0] ^= 0xff
	if _, _, err := ParseHello(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic err = %v", err)
	}
	v, token, windowMs, err := ParseHelloOK(AppendHelloOK(nil))
	if err != nil || v != Version || token != 0 || windowMs != 0 {
		t.Fatalf("ParseHelloOK = %d, %d, %d, %v", v, token, windowMs, err)
	}
	v, token, windowMs, err = ParseHelloOK(AppendHelloOKResume(nil, 0xdeadbeefcafe, 15000))
	if err != nil || v != Version || token != 0xdeadbeefcafe || windowMs != 15000 {
		t.Fatalf("ParseHelloOK resume = %d, %d, %d, %v", v, token, windowMs, err)
	}
}

func TestSessionOpenedRoundTrip(t *testing.T) {
	cases := []SessionOpened{
		{Session: 1, HasPredictor: true, State: StateHealthy, Events: []string{"a", "b:1", ""}},
		{Session: 2, HasPredictor: false, State: StateDegraded, Events: []string{}},
		{Session: 3, HasPredictor: true, State: StateQuarantined, Events: nil},
	}
	for i, want := range cases {
		got, err := ParseSessionOpened(AppendSessionOpened(nil, want))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestSessionOpenedDishonestCount(t *testing.T) {
	// A count field claiming far more descriptors than the payload holds
	// must fail before allocating the claimed capacity.
	p := appendU32(nil, 9)
	p = append(p, 1, StateHealthy, 1)
	p = appendU32(p, 1<<30)
	if _, err := ParseSessionOpened(p); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestSubmitRoundTrip(t *testing.T) {
	s, id, err := ParseSubmit(AppendSubmit(nil, 42, -7))
	if err != nil || s != 42 || id != -7 {
		t.Fatalf("ParseSubmit = %d, %d, %v", s, id, err)
	}
	if _, _, err := ParseSubmit([]byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short submit err = %v", err)
	}
}

func TestSubmitBatchRoundTrip(t *testing.T) {
	ids := []int32{5, -1, 0, 1 << 20}
	s, b, err := ParseSubmitBatch(AppendSubmitBatch(nil, 9, ids))
	if err != nil || s != 9 {
		t.Fatalf("ParseSubmitBatch = %d, %v", s, err)
	}
	if b.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(ids))
	}
	for i, want := range ids {
		if got := b.At(i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
	// Count/body mismatch in either direction is malformed.
	p := AppendSubmitBatch(nil, 9, ids)
	if _, _, err := ParseSubmitBatch(p[:len(p)-1]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("torn batch err = %v", err)
	}
	binary.BigEndian.PutUint32(p[4:], uint32(len(ids)+1))
	if _, _, err := ParseSubmitBatch(p); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overcount batch err = %v", err)
	}
}

func TestPredictRoundTrips(t *testing.T) {
	s, d, err := ParsePredictAt(AppendPredictAt(nil, 3, 17))
	if err != nil || s != 3 || d != 17 {
		t.Fatalf("ParsePredictAt = %d, %d, %v", s, d, err)
	}
	s, n, err := ParsePredictSequence(AppendPredictSequence(nil, 4, 8))
	if err != nil || s != 4 || n != 8 {
		t.Fatalf("ParsePredictSequence = %d, %d, %v", s, n, err)
	}

	// Bit-exactness of float fields, including non-round values.
	want := predictor.Prediction{EventID: 11, Probability: 1.0 / 3.0, Distance: 5, ExpectedNs: 1234.5678e3}
	got, ok, err := ParsePrediction(AppendPrediction(nil, want, true))
	if err != nil || !ok {
		t.Fatalf("ParsePrediction: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("prediction round trip: got %+v want %+v", got, want)
	}
	if math.Float64bits(got.Probability) != math.Float64bits(want.Probability) {
		t.Fatal("probability bits differ")
	}

	preds := []predictor.Prediction{want, {EventID: -1, Probability: 0.25, Distance: 1, ExpectedNs: 0}}
	gotSeq, err := ParsePredictions(AppendPredictions(nil, preds))
	if err != nil {
		t.Fatalf("ParsePredictions: %v", err)
	}
	if !reflect.DeepEqual(gotSeq, preds) {
		t.Fatalf("predictions round trip: got %+v want %+v", gotSeq, preds)
	}
	empty, err := ParsePredictions(AppendPredictions(nil, nil))
	if err != nil || empty != nil {
		t.Fatalf("empty predictions = %v, %v", empty, err)
	}
}

func TestHealthRoundTrip(t *testing.T) {
	tenant, err := ParseHealth(AppendHealth(nil, "cg"))
	if err != nil || tenant != "cg" {
		t.Fatalf("ParseHealth = %q, %v", tenant, err)
	}
	want := HealthInfo{
		State: StateDegraded, Oracles: 3, PanicsContained: 2, BudgetBreaches: 1,
		QuarantinedThreads: 4, CheckpointFailures: 5, Promotions: 6, Rollbacks: 7,
		Cause: "watchdog: thread 2 diverged",
	}
	got, err := ParseHealthInfo(AppendHealthInfo(nil, want))
	if err != nil {
		t.Fatalf("ParseHealthInfo: %v", err)
	}
	if got != want {
		t.Fatalf("health round trip: got %+v want %+v", got, want)
	}
}

func TestCloseAndErrorRoundTrip(t *testing.T) {
	s, err := ParseCloseSession(AppendCloseSession(nil, 77))
	if err != nil || s != 77 {
		t.Fatalf("ParseCloseSession = %d, %v", s, err)
	}
	s, err = ParseSessionClosed(AppendSessionClosed(nil, 77))
	if err != nil || s != 77 {
		t.Fatalf("ParseSessionClosed = %d, %v", s, err)
	}
	code, msg, err := ParseError(AppendError(nil, CodeDraining, "server draining"))
	if err != nil || code != CodeDraining || msg != "server draining" {
		t.Fatalf("ParseError = %v, %q, %v", code, msg, err)
	}
	// The retry-after form decodes with either parser; the plain parser
	// discards the hint, ParseErrorRetry surfaces it.
	p := AppendErrorRetry(nil, CodeRetryLater, "shed", 250)
	code, msg, err = ParseError(p)
	if err != nil || code != CodeRetryLater || msg != "shed" {
		t.Fatalf("ParseError(retry form) = %v, %q, %v", code, msg, err)
	}
	code, msg, retryMs, err := ParseErrorRetry(p)
	if err != nil || code != CodeRetryLater || msg != "shed" || retryMs != 250 {
		t.Fatalf("ParseErrorRetry = %v, %q, %d, %v", code, msg, retryMs, err)
	}
}

func TestResumeRoundTrips(t *testing.T) {
	token, err := ParseResume(AppendResume(nil, 0x1122334455667788))
	if err != nil || token != 0x1122334455667788 {
		t.Fatalf("ParseResume = %#x, %v", token, err)
	}
	want := []ResumedSession{{Session: 0, Applied: 12}, {Session: 3, Applied: 1 << 40}}
	got, err := ParseResumed(AppendResumed(nil, want))
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseResumed = %+v, %v, want %+v", got, err, want)
	}
	empty, err := ParseResumed(AppendResumed(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty resumed = %+v, %v", empty, err)
	}
	// A dishonest count must fail before allocating the claimed capacity.
	dishonest := appendU32(nil, 1<<30)
	if _, err := ParseResumed(dishonest); !errors.Is(err, ErrMalformed) {
		t.Fatalf("dishonest resumed err = %v", err)
	}

	ids := []int32{7, -2, 9}
	sess, base, b, err := ParseReplay(AppendReplay(nil, 5, 101, ids))
	if err != nil || sess != 5 || base != 101 || b.Len() != 3 {
		t.Fatalf("ParseReplay = %d, %d, len %d, %v", sess, base, b.Len(), err)
	}
	for i, wantID := range ids {
		if got := b.At(i); got != wantID {
			t.Fatalf("replay At(%d) = %d, want %d", i, got, wantID)
		}
	}
	rp := AppendReplay(nil, 5, 101, ids)
	binary.BigEndian.PutUint32(rp[12:], uint32(len(ids)+1))
	if _, _, _, err := ParseReplay(rp); !errors.Is(err, ErrMalformed) {
		t.Fatalf("overcount replay err = %v", err)
	}

	sess, applied, err := ParseReplayed(AppendReplayed(nil, 5, 104))
	if err != nil || sess != 5 || applied != 104 {
		t.Fatalf("ParseReplayed = %d, %d, %v", sess, applied, err)
	}

	if err := ParseHeartbeat(nil); err != nil {
		t.Fatalf("ParseHeartbeat = %v", err)
	}
	if err := ParseHeartbeatAck(nil); err != nil {
		t.Fatalf("ParseHeartbeatAck = %v", err)
	}
	if err := ParseDetach(nil); err != nil {
		t.Fatalf("ParseDetach = %v", err)
	}
}

func TestModelLifecycleRoundTrips(t *testing.T) {
	tenant, err := ParseModelInfo(AppendModelInfo(nil, "cg"))
	if err != nil || tenant != "cg" {
		t.Fatalf("ParseModelInfo = %q, %v", tenant, err)
	}
	want := ModelInfo{
		Enabled: true, State: ModelWatching, ServingGeneration: 7,
		Promotions: 3, Rollbacks: 1, ShadowEpochs: 42, Retained: []uint64{7, 5},
	}
	got, err := ParseModelInfoR(AppendModelInfoR(nil, want))
	if err != nil {
		t.Fatalf("ParseModelInfoR: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("model info round trip: got %+v want %+v", got, want)
	}
	// No retained generations encodes and decodes cleanly too.
	got, err = ParseModelInfoR(AppendModelInfoR(nil, ModelInfo{}))
	if err != nil || got.Enabled || got.State != ModelFrozen || len(got.Retained) != 0 {
		t.Fatalf("empty model info round trip: %+v, %v", got, err)
	}
	for _, tc := range []struct {
		enc func([]byte, string) []byte
		dec func([]byte) (string, error)
	}{
		{AppendPromote, ParsePromote},
		{AppendRollback, ParseRollback},
	} {
		tenant, err := tc.dec(tc.enc(nil, "cg"))
		if err != nil || tenant != "cg" {
			t.Fatalf("promote/rollback tenant round trip = %q, %v", tenant, err)
		}
	}
	gen, err := ParsePromoted(AppendPromoted(nil, 9))
	if err != nil || gen != 9 {
		t.Fatalf("ParsePromoted = %d, %v", gen, err)
	}
	gen, err = ParseRolledBack(AppendRolledBack(nil, 10))
	if err != nil || gen != 10 {
		t.Fatalf("ParseRolledBack = %d, %v", gen, err)
	}
}

func TestClusterRoundTrips(t *testing.T) {
	epoch, err := ParseShardMap(AppendShardMap(nil, 42))
	if err != nil || epoch != 42 {
		t.Fatalf("ParseShardMap = %d, %v", epoch, err)
	}
	sm := ShardMap{Epoch: 9, Replicas: 1, Daemons: []string{"127.0.0.1:9137", "unix:///run/pythiad.sock"}}
	gotSM, err := ParseShardMapR(AppendShardMapR(nil, sm))
	if err != nil {
		t.Fatalf("ParseShardMapR: %v", err)
	}
	if !reflect.DeepEqual(gotSM, sm) {
		t.Fatalf("shard map round trip: got %+v want %+v", gotSM, sm)
	}
	// A non-clustered daemon answers with an empty map.
	gotSM, err = ParseShardMapR(AppendShardMapR(nil, ShardMap{}))
	if err != nil || gotSM.Epoch != 0 || len(gotSM.Daemons) != 0 {
		t.Fatalf("empty shard map round trip: %+v, %v", gotSM, err)
	}

	tenant, err := ParseFetchModel(AppendFetchModel(nil, "cg"))
	if err != nil || tenant != "cg" {
		t.Fatalf("ParseFetchModel = %q, %v", tenant, err)
	}
	om := ModelOffer{Tenant: "cg", Generation: 12, Source: "127.0.0.1:9137", Payload: []byte{9, 8, 7, 6, 5}}
	gotOM, err := ParseOfferModel(AppendOfferModel(nil, om))
	if err != nil {
		t.Fatalf("ParseOfferModel: %v", err)
	}
	if !reflect.DeepEqual(gotOM, om) {
		t.Fatalf("model offer round trip: got %+v want %+v", gotOM, om)
	}
	accepted, have, err := ParseModelAccepted(AppendModelAccepted(nil, false, 13))
	if err != nil || accepted || have != 13 {
		t.Fatalf("ParseModelAccepted = %v, %d, %v", accepted, have, err)
	}
}

// TestClusterDishonestCounts pins the untrusted-size clamps of the cluster
// frames: a count or size field larger than the payload can back must come
// back malformed, never sized into an allocation or slice bound.
func TestClusterDishonestCounts(t *testing.T) {
	// ShardMapR claiming 60k daemons in a 12-byte payload.
	p := AppendShardMapR(nil, ShardMap{Epoch: 1, Replicas: 0, Daemons: []string{"a"}})
	p[9], p[10] = 0xff, 0xff // daemon count field
	if _, err := ParseShardMapR(p); err == nil {
		t.Fatal("ParseShardMapR accepted a dishonest daemon count")
	}
	// ShardMapR claiming more daemons than MaxDaemons, with a payload big
	// enough to pass the bytes-per-entry check.
	many := make([]string, MaxDaemons)
	for i := range many {
		many[i] = "a"
	}
	p = AppendShardMapR(nil, ShardMap{Epoch: 1, Daemons: many})
	p[9] = byte((MaxDaemons + 1) >> 8)
	p[10] = byte((MaxDaemons + 1) & 0xff)
	if _, err := ParseShardMapR(p); err == nil {
		t.Fatal("ParseShardMapR accepted a daemon count past MaxDaemons")
	}
	// OfferModel claiming a model far larger than the payload carries.
	p = AppendOfferModel(nil, ModelOffer{Tenant: "x", Generation: 1, Source: "a", Payload: []byte{1, 2}})
	p[len(p)-6] = 0xff // high byte of the size field
	if _, err := ParseOfferModel(p); err == nil {
		t.Fatal("ParseOfferModel accepted a dishonest model size")
	}
}

func TestShmRoundTrips(t *testing.T) {
	ss := ShmSetup{Rings: 8, Slots: 4096, PredCap: 64, SegSize: 3 << 20, Path: "/dev/shm/pythia-shm-42"}
	got, err := ParseShmSetup(AppendShmSetup(nil, ss))
	if err != nil || got != ss {
		t.Fatalf("ParseShmSetup = %+v, %v, want %+v", got, err, ss)
	}
	rings, err := ParseShmSetupOK(AppendShmSetupOK(nil, 8))
	if err != nil || rings != 8 {
		t.Fatalf("ParseShmSetupOK = %d, %v", rings, err)
	}
	sess, ring, err := ParseShmBind(AppendShmBind(nil, 5, 2))
	if err != nil || sess != 5 || ring != 2 {
		t.Fatalf("ParseShmBind = %d, %d, %v", sess, ring, err)
	}
	sess, ring, err = ParseShmBound(AppendShmBound(nil, 5, 2))
	if err != nil || sess != 5 || ring != 2 {
		t.Fatalf("ParseShmBound = %d, %d, %v", sess, ring, err)
	}
	sub := Subscribe{Session: 5, Horizon: 16, Every: 32}
	gotSub, err := ParseSubscribe(AppendSubscribe(nil, sub))
	if err != nil || gotSub != sub {
		t.Fatalf("ParseSubscribe = %+v, %v, want %+v", gotSub, err, sub)
	}
	sess, err = ParseSubscribed(AppendSubscribed(nil, 5))
	if err != nil || sess != 5 {
		t.Fatalf("ParseSubscribed = %d, %v", sess, err)
	}
}

func TestTrailingBytesAreMalformed(t *testing.T) {
	checks := []func([]byte) error{
		func(p []byte) error { _, _, err := ParseHello(p); return err },
		func(p []byte) error { _, err := ParseOpenSession(p); return err },
		func(p []byte) error { _, err := ParseSessionOpened(p); return err },
		func(p []byte) error { _, _, err := ParseSubmit(p); return err },
		func(p []byte) error { _, _, err := ParseSubmitBatch(p); return err },
		func(p []byte) error { _, _, err := ParsePredictAt(p); return err },
		func(p []byte) error { _, _, err := ParsePredictSequence(p); return err },
		func(p []byte) error { _, _, err := ParsePrediction(p); return err },
		func(p []byte) error { _, err := ParsePredictions(p); return err },
		func(p []byte) error { _, err := ParseHealth(p); return err },
		func(p []byte) error { _, err := ParseHealthInfo(p); return err },
		func(p []byte) error { _, err := ParseCloseSession(p); return err },
		func(p []byte) error { _, _, err := ParseError(p); return err },
		func(p []byte) error { _, err := ParseShmSetup(p); return err },
		func(p []byte) error { _, err := ParseShmSetupOK(p); return err },
		func(p []byte) error { _, _, err := ParseShmBind(p); return err },
		func(p []byte) error { _, _, err := ParseShmBound(p); return err },
		func(p []byte) error { _, err := ParseSubscribe(p); return err },
		func(p []byte) error { _, err := ParseSubscribed(p); return err },
		func(p []byte) error { _, _, _, err := ParseHelloOK(p); return err },
		func(p []byte) error { _, _, _, err := ParseErrorRetry(p); return err },
		func(p []byte) error { _, err := ParseResume(p); return err },
		func(p []byte) error { _, err := ParseResumed(p); return err },
		func(p []byte) error { _, _, _, err := ParseReplay(p); return err },
		func(p []byte) error { _, _, err := ParseReplayed(p); return err },
		func(p []byte) error { return ParseHeartbeat(p) },
		func(p []byte) error { return ParseHeartbeatAck(p) },
		func(p []byte) error { return ParseDetach(p) },
		func(p []byte) error { _, err := ParseModelInfo(p); return err },
		func(p []byte) error { _, err := ParseModelInfoR(p); return err },
		func(p []byte) error { _, err := ParsePromote(p); return err },
		func(p []byte) error { _, err := ParsePromoted(p); return err },
		func(p []byte) error { _, err := ParseRollback(p); return err },
		func(p []byte) error { _, err := ParseRolledBack(p); return err },
		func(p []byte) error { _, err := ParseShardMap(p); return err },
		func(p []byte) error { _, err := ParseShardMapR(p); return err },
		func(p []byte) error { _, err := ParseFetchModel(p); return err },
		func(p []byte) error { _, err := ParseOfferModel(p); return err },
		func(p []byte) error { _, _, err := ParseModelAccepted(p); return err },
	}
	bodies := [][]byte{
		AppendHello(nil, HelloFlagResume),
		AppendOpenSession(nil, OpenSession{TID: 1, Tenant: "x"}),
		AppendSessionOpened(nil, SessionOpened{Session: 1}),
		AppendSubmit(nil, 1, 2),
		AppendSubmitBatch(nil, 1, []int32{2}),
		AppendPredictAt(nil, 1, 2),
		AppendPredictSequence(nil, 1, 2),
		AppendPrediction(nil, predictor.Prediction{}, true),
		AppendPredictions(nil, []predictor.Prediction{{}}),
		AppendHealth(nil, "x"),
		AppendHealthInfo(nil, HealthInfo{}),
		AppendCloseSession(nil, 1),
		AppendError(nil, CodeInternal, "x"),
		AppendShmSetup(nil, ShmSetup{Rings: 1, Slots: 64, PredCap: 1, SegSize: 1, Path: "/p"}),
		AppendShmSetupOK(nil, 1),
		AppendShmBind(nil, 1, 0),
		AppendShmBound(nil, 1, 0),
		AppendSubscribe(nil, Subscribe{Session: 1, Horizon: 1, Every: 1}),
		AppendSubscribed(nil, 1),
		AppendHelloOKResume(nil, 1, 1),
		AppendErrorRetry(nil, CodeRetryLater, "x", 1),
		AppendResume(nil, 1),
		AppendResumed(nil, []ResumedSession{{Session: 1, Applied: 2}}),
		AppendReplay(nil, 1, 2, []int32{3}),
		AppendReplayed(nil, 1, 2),
		nil, // Heartbeat
		nil, // HeartbeatAck
		nil, // Detach
		AppendModelInfo(nil, "x"),
		AppendModelInfoR(nil, ModelInfo{Enabled: true, State: ModelLearning, Retained: []uint64{2, 1}}),
		AppendPromote(nil, "x"),
		AppendPromoted(nil, 1),
		AppendRollback(nil, "x"),
		AppendRolledBack(nil, 1),
		AppendShardMap(nil, 1),
		AppendShardMapR(nil, ShardMap{Epoch: 1, Replicas: 1, Daemons: []string{"a", "b"}}),
		AppendFetchModel(nil, "x"),
		AppendOfferModel(nil, ModelOffer{Tenant: "x", Generation: 1, Source: "a", Payload: []byte{1}}),
		AppendModelAccepted(nil, true, 1),
	}
	for i, check := range checks {
		if err := check(append(bodies[i], 0)); err == nil {
			t.Fatalf("parser %d accepted trailing byte", i)
		}
		if err := check(bodies[i]); err != nil {
			t.Fatalf("parser %d rejected its own encoding: %v", i, err)
		}
	}
}

func TestEncodeZeroAllocWithReusedBuffer(t *testing.T) {
	buf := make([]byte, 0, 256)
	ids := []int32{1, 2, 3, 4}
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendSubmit(buf[:0], 1, 2)
		buf = AppendSubmitBatch(buf[:0], 1, ids)
		buf = AppendPredictAt(buf[:0], 1, 16)
		buf = AppendPrediction(buf[:0], predictor.Prediction{EventID: 1}, true)
	})
	if allocs != 0 {
		t.Fatalf("hot-path encoders allocated %v/op with a reused buffer", allocs)
	}
}

func TestDecodeZeroAllocOnHotPath(t *testing.T) {
	submit := AppendSubmit(nil, 1, 2)
	batch := AppendSubmitBatch(nil, 1, []int32{1, 2, 3, 4})
	predictAt := AppendPredictAt(nil, 1, 16)
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := ParseSubmit(submit); err != nil {
			t.Fatal(err)
		}
		if _, b, err := ParseSubmitBatch(batch); err != nil || b.Len() != 4 {
			t.Fatal(err)
		}
		if _, _, err := ParsePredictAt(predictAt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot-path decoders allocated %v/op", allocs)
	}
}
