package predictor

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/grammar"
	"repro/internal/model"
)

// timedTraceOf is traceOf with a synthetic timing model attached: each event
// id gets a distinct per-site duration so that ExpectedNs differences between
// the cached and the reference query paths cannot hide behind zeros.
func timedTraceOf(seq []int32) *model.Trace {
	g := grammar.New()
	maxID := int32(0)
	for _, e := range seq {
		g.Append(e)
		if e > maxID {
			maxID = e
		}
	}
	f := g.Freeze()
	timing := model.NewTiming()
	for ev := int32(0); ev <= maxID; ev++ {
		for _, ref := range f.TermSites[ev] {
			// Deliberately non-round values: float64 sums of these expose
			// any change in accumulation order at the last bit.
			timing.AddPath([]grammar.UserRef{ref}, ev, 137+int64(ev)*311+int64(ref.Rule)*17)
		}
	}
	names := make([]string, maxID+1)
	for i := range names {
		names[i] = "e" + string(rune('A'+i%26))
	}
	return &model.Trace{Grammar: f, Events: names, Timing: timing}
}

// diffOp is one step of a differential schedule: an observation or a query
// applied identically to both predictors.
type diffOp struct {
	kind    int // 0 observe, 1 PredictAt, 2 PredictSequence, 3 PredictDurationUntil, 4 StartAtBeginning, 5 Reset
	event   int32
	arg     int
	queryEv int32
}

// buildSchedule derives a randomized noisy replay of seq: mostly faithful
// observations, with unexpected-but-known events, unknown events, skips and
// restarts injected, and queries of every kind sprinkled between steps.
func buildSchedule(rng *rand.Rand, seq []int32, maxID int32, steps int) []diffOp {
	var ops []diffOp
	ops = append(ops, diffOp{kind: 4}) // StartAtBeginning
	i := 0
	for len(ops) < steps {
		r := rng.Float64()
		switch {
		case r < 0.60: // faithful next event
			ops = append(ops, diffOp{kind: 0, event: seq[i%len(seq)]})
			i++
		case r < 0.68: // unexpected but known event: forces re-anchoring
			ops = append(ops, diffOp{kind: 0, event: seq[rng.Intn(len(seq))]})
			i += rng.Intn(3)
		case r < 0.72: // unknown event: drops all hypotheses
			ops = append(ops, diffOp{kind: 0, event: maxID + 1 + int32(rng.Intn(3))})
		case r < 0.74: // skip ahead without telling the predictor
			i += 1 + rng.Intn(4)
		case r < 0.76:
			ops = append(ops, diffOp{kind: 4}) // StartAtBeginning
			i = 0
		case r < 0.77:
			ops = append(ops, diffOp{kind: 5}) // Reset
		case r < 0.87:
			ops = append(ops, diffOp{kind: 1, arg: 1 + rng.Intn(80)})
		case r < 0.94:
			ops = append(ops, diffOp{kind: 2, arg: 1 + rng.Intn(40)})
		default:
			ops = append(ops, diffOp{kind: 3, arg: 1 + rng.Intn(60), queryEv: int32(rng.Intn(int(maxID) + 2))})
		}
	}
	return ops
}

// runDifferential executes the schedule against a cached and a cache-disabled
// predictor and fails on the first observable divergence. Every query result
// must be byte-identical (reflect.DeepEqual on the Prediction values,
// including ExpectedNs at full float64 precision), and the tracking state
// (Stats, Tracking, Anchored, Candidates, Confidence) must match after every
// step.
func runDifferential(t *testing.T, tr *model.Trace, ops []diffOp) {
	t.Helper()
	cached := New(tr, Config{})
	ref := New(tr, Config{DisableCache: true})
	for step, op := range ops {
		switch op.kind {
		case 0:
			cached.Observe(op.event)
			ref.Observe(op.event)
		case 1:
			gp, gok := cached.PredictAt(op.arg)
			wp, wok := ref.PredictAt(op.arg)
			if gok != wok || !reflect.DeepEqual(gp, wp) {
				t.Fatalf("step %d: PredictAt(%d) diverged:\ncached: %+v %v\nref:    %+v %v",
					step, op.arg, gp, gok, wp, wok)
			}
		case 2:
			gs := cached.PredictSequence(op.arg)
			ws := ref.PredictSequence(op.arg)
			if !reflect.DeepEqual(gs, ws) {
				t.Fatalf("step %d: PredictSequence(%d) diverged:\ncached: %+v\nref:    %+v",
					step, op.arg, gs, ws)
			}
		case 3:
			gp, gok := cached.PredictDurationUntil(op.queryEv, op.arg)
			wp, wok := ref.PredictDurationUntil(op.queryEv, op.arg)
			if gok != wok || !reflect.DeepEqual(gp, wp) {
				t.Fatalf("step %d: PredictDurationUntil(%d,%d) diverged:\ncached: %+v %v\nref:    %+v %v",
					step, op.queryEv, op.arg, gp, gok, wp, wok)
			}
		case 4:
			cached.StartAtBeginning()
			ref.StartAtBeginning()
		case 5:
			cached.Reset()
			ref.Reset()
		}
		if cached.Stats() != ref.Stats() {
			t.Fatalf("step %d (op %d): stats diverged: cached %+v, ref %+v",
				step, op.kind, cached.Stats(), ref.Stats())
		}
		if cached.Tracking() != ref.Tracking() || cached.Anchored() != ref.Anchored() ||
			cached.Candidates() != ref.Candidates() || cached.Confidence() != ref.Confidence() {
			t.Fatalf("step %d (op %d): tracking state diverged: cached (%v,%v,%d,%v), ref (%v,%v,%d,%v)",
				step, op.kind,
				cached.Tracking(), cached.Anchored(), cached.Candidates(), cached.Confidence(),
				ref.Tracking(), ref.Anchored(), ref.Candidates(), ref.Confidence())
		}
	}
}

// TestDifferentialCachedVsReference pins the central property of the
// incremental prediction cache: with and without the cache, the predictor is
// observationally identical on noisy replays — same predictions bit for bit,
// same tracking statistics — across many randomized schedules.
func TestDifferentialCachedVsReference(t *testing.T) {
	motifs := [][]int32{
		{0, 1, 2, 1, 2, 3},
		{0, 1, 0, 2, 0, 1, 0, 3},
		{5, 5, 5, 1, 2, 5, 5, 5, 1, 2},
		{0, 1, 2, 3, 4, 5, 6, 7},
	}
	for mi, motif := range motifs {
		var seq []int32
		for r := 0; r < 60; r++ {
			seq = append(seq, motif...)
		}
		maxID := int32(0)
		for _, e := range seq {
			if e > maxID {
				maxID = e
			}
		}
		tr := timedTraceOf(seq)
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(mi)))
			ops := buildSchedule(rng, seq, maxID, 600)
			runDifferential(t, tr, ops)
		}
	}
}

// TestDifferentialExactReplay is the dense-query faithful-replay case: after
// every observation, query every distance up to the remaining trace and
// beyond. This is where the cache serves nearly every query, so any window
// bookkeeping bug (off-by-one head, stale end stepper) shows up immediately.
func TestDifferentialExactReplay(t *testing.T) {
	var seq []int32
	for r := 0; r < 40; r++ {
		seq = append(seq, 0, 1, 2, 1, 2, 3)
	}
	tr := timedTraceOf(seq)
	cached := New(tr, Config{})
	ref := New(tr, Config{DisableCache: true})
	cached.StartAtBeginning()
	ref.StartAtBeginning()
	for i, e := range seq {
		cached.Observe(e)
		ref.Observe(e)
		for _, d := range []int{1, 2, 3, 5, 8, 13, 21, 34, 55, len(seq) - i, len(seq) - i + 1} {
			if d < 1 {
				continue
			}
			gp, gok := cached.PredictAt(d)
			wp, wok := ref.PredictAt(d)
			if gok != wok || !reflect.DeepEqual(gp, wp) {
				t.Fatalf("step %d: PredictAt(%d) diverged:\ncached: %+v %v\nref:    %+v %v",
					i, d, gp, gok, wp, wok)
			}
		}
		gs := cached.PredictSequence(24)
		ws := ref.PredictSequence(24)
		if !reflect.DeepEqual(gs, ws) {
			t.Fatalf("step %d: PredictSequence diverged:\ncached: %+v\nref:    %+v", i, gs, ws)
		}
	}
}

// TestDifferentialQueryPurity checks that queries are pure: two cached
// predictors observing the same stream — one queried heavily at every step,
// one never queried — must end in the same observable state and produce the
// same subsequent predictions. This is the regression test for scratch-buffer
// aliasing between the query path and setCands under re-anchoring: a query
// that leaks state into the tracking buffers desynchronizes the two.
func TestDifferentialQueryPurity(t *testing.T) {
	var seq []int32
	for r := 0; r < 50; r++ {
		seq = append(seq, 0, 1, 2, 1, 2, 3)
	}
	tr := timedTraceOf(seq)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		queried := New(tr, Config{})
		control := New(tr, Config{})
		queried.StartAtBeginning()
		control.StartAtBeginning()
		i := 0
		for step := 0; step < 400; step++ {
			var ev int32
			switch r := rng.Float64(); {
			case r < 0.75:
				ev = seq[i%len(seq)]
				i++
			case r < 0.9: // unexpected known event: re-anchor while queries interleave
				ev = seq[rng.Intn(len(seq))]
				i += rng.Intn(4)
			default: // unknown event, then resume
				ev = 100 + int32(rng.Intn(2))
			}
			queried.Observe(ev)
			control.Observe(ev)
			// Hammer the queried predictor only.
			for _, d := range []int{1, 3, 17, 64} {
				queried.PredictAt(d)
			}
			queried.PredictSequence(9)
			queried.PredictDurationUntil(seq[rng.Intn(len(seq))], 32)
			if queried.Stats() != control.Stats() {
				t.Fatalf("seed %d step %d: queries changed tracking stats: %+v vs %+v",
					seed, step, queried.Stats(), control.Stats())
			}
			if queried.Candidates() != control.Candidates() || queried.Confidence() != control.Confidence() {
				t.Fatalf("seed %d step %d: queries changed hypothesis set: (%d,%v) vs (%d,%v)",
					seed, step, queried.Candidates(), queried.Confidence(),
					control.Candidates(), control.Confidence())
			}
			gp, gok := queried.PredictAt(1)
			wp, wok := control.PredictAt(1)
			if gok != wok || !reflect.DeepEqual(gp, wp) {
				t.Fatalf("seed %d step %d: post-query predictions diverged: %+v %v vs %+v %v",
					seed, step, gp, gok, wp, wok)
			}
		}
	}
}
