package predictor

import (
	"sort"

	"repro/internal/grammar"
	"repro/internal/progress"
)

// Alternative is one entry of a predicted event distribution.
type Alternative struct {
	EventID     int32
	Probability float64
}

// PredictDistribution returns the full probability distribution over the
// event at the given distance, most likely first. Runtime systems that hedge
// across several possible futures (e.g. pre-posting receives for every
// likely sender) use this instead of PredictAt.
func (p *Predictor) PredictDistribution(distance int) []Alternative {
	if distance <= 0 || len(p.cands) == 0 {
		return nil
	}
	cur := p.seedSim()
	for step := 1; step <= distance; step++ {
		var nxt []sim
		if step == 1 && p.pending {
			nxt = cur
		} else {
			for _, s := range cur {
				for _, b := range progress.Successors(p.f, s.br.Pos, s.br.Weight) {
					nxt = append(nxt, sim{br: b})
				}
			}
		}
		if len(nxt) == 0 {
			return nil
		}
		cur = mergeCapSim(nxt, p.cfg.MaxLookahead)
	}
	byEvent := make(map[int32]float64, 8)
	var total float64
	for _, s := range cur {
		byEvent[s.br.Pos.Terminal(p.f)] += s.br.Weight
		total += s.br.Weight
	}
	out := make([]Alternative, 0, len(byEvent))
	for ev, w := range byEvent {
		prob := 0.0
		if total > 0 {
			prob = w / total
		}
		out = append(out, Alternative{EventID: ev, Probability: prob})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].EventID < out[j].EventID
	})
	return out
}

// seedSim converts the live candidate set into simulation branches. When a
// fresh start is pending, candidates already designate the next event.
func (p *Predictor) seedSim() []sim {
	out := make([]sim, 0, len(p.cands))
	for _, c := range p.cands {
		out = append(out, sim{br: c})
	}
	return out
}

// ExpectedPath returns the most likely next terminal run positions as far as
// maxDistance, for diagnostics: each element is the dominant position's
// grammar reference and event.
type PathStep struct {
	Distance int
	EventID  int32
	Ref      grammar.UserRef
}

// ExpectedPath simulates forward and records, per step, the dominant
// branch's position.
func (p *Predictor) ExpectedPath(maxDistance int) []PathStep {
	if maxDistance <= 0 || len(p.cands) == 0 {
		return nil
	}
	cur := p.seedSim()
	var out []PathStep
	for step := 1; step <= maxDistance; step++ {
		var nxt []sim
		if step == 1 && p.pending {
			nxt = cur
		} else {
			for _, s := range cur {
				for _, b := range progress.Successors(p.f, s.br.Pos, s.br.Weight) {
					nxt = append(nxt, sim{br: b})
				}
			}
		}
		if len(nxt) == 0 {
			return out
		}
		cur = mergeCapSim(nxt, p.cfg.MaxLookahead)
		best := cur[0]
		out = append(out, PathStep{
			Distance: step,
			EventID:  best.br.Pos.Terminal(p.f),
			Ref:      best.br.Pos.Ref(),
		})
	}
	return out
}
