package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grammar"
	"repro/internal/model"
)

// traceOf reduces a sequence into a model.Trace without timing.
func traceOf(seq []int32) *model.Trace {
	g := grammar.New()
	maxID := int32(0)
	for _, e := range seq {
		g.Append(e)
		if e > maxID {
			maxID = e
		}
	}
	names := make([]string, maxID+1)
	for i := range names {
		names[i] = "e" + string(rune('A'+i%26))
	}
	return &model.Trace{Grammar: g.Freeze(), Events: names}
}

func seqOf(s string) []int32 {
	out := make([]int32, len(s))
	for i, c := range s {
		out[i] = int32(c - 'a')
	}
	return out
}

// TestExactReplayDistanceOne replays the reference trace from the beginning;
// at every step the distance-1 prediction must match the next event exactly
// (the deterministic case of section II-B1).
func TestExactReplayDistanceOne(t *testing.T) {
	seq := seqOf("abbcbcabbbcbcabbbcbcab")
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	for i, e := range seq {
		pred, ok := p.PredictAt(1)
		if !ok {
			t.Fatalf("step %d: no prediction", i)
		}
		if pred.EventID != e {
			t.Fatalf("step %d: predicted %d, actual %d", i, pred.EventID, e)
		}
		if pred.Probability < 0.999 {
			t.Fatalf("step %d: deterministic prediction has probability %v", i, pred.Probability)
		}
		p.Observe(e)
	}
	st := p.Stats()
	if st.Followed != int64(len(seq)) || st.ReAnchored != 0 || st.Unknown != 0 {
		t.Fatalf("stats = %+v, want all followed", st)
	}
	if !p.Anchored() {
		t.Fatal("predictor lost its anchor on an exact replay")
	}
}

// TestExactReplayAllDistances checks PredictAt(x) against ground truth for
// several distances on an exact replay.
func TestExactReplayAllDistances(t *testing.T) {
	var seq []int32
	for i := 0; i < 40; i++ {
		seq = append(seq, 0, 1, 2, 1, 2, 3)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	for i, e := range seq {
		p.Observe(e)
		for _, d := range []int{1, 2, 4, 8, 16} {
			if i+d >= len(seq) {
				continue
			}
			pred, ok := p.PredictAt(d)
			if !ok {
				t.Fatalf("step %d distance %d: no prediction", i, d)
			}
			if pred.EventID != seq[i+d] {
				t.Fatalf("step %d distance %d: predicted %d, actual %d",
					i, d, pred.EventID, seq[i+d])
			}
		}
	}
}

// TestMidRunAttach starts observing in the middle of the trace, as the
// paper's walk-through does, and checks the predictor converges.
func TestMidRunAttach(t *testing.T) {
	var seq []int32
	for i := 0; i < 30; i++ {
		seq = append(seq, 0, 1, 2, 3)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})
	start := 17 // arbitrary offset, not a pattern boundary
	correct := 0
	total := 0
	for i := start; i < len(seq); i++ {
		p.Observe(seq[i])
		if i+1 < len(seq) {
			pred, ok := p.PredictAt(1)
			total++
			if ok && pred.EventID == seq[i+1] {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no predictions made")
	}
	if ratio := float64(correct) / float64(total); ratio < 0.9 {
		t.Fatalf("mid-run accuracy = %.2f, want >= 0.9", ratio)
	}
}

// TestUnknownEventRecovery submits an event absent from the reference trace;
// the predictor must report Unknown, produce no prediction, and recover once
// known events resume.
func TestUnknownEventRecovery(t *testing.T) {
	var seq []int32
	for i := 0; i < 20; i++ {
		seq = append(seq, 0, 1, 2)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	p.Observe(0)
	p.Observe(1)
	p.Observe(99) // never seen in the reference execution
	if p.Tracking() {
		t.Fatal("tracking after unknown event")
	}
	if _, ok := p.PredictAt(1); ok {
		t.Fatal("prediction produced while lost")
	}
	// Resume with known events: re-anchoring must restore predictions.
	p.Observe(2)
	p.Observe(0)
	pred, ok := p.PredictAt(1)
	if !ok {
		t.Fatal("no prediction after recovery")
	}
	if pred.EventID != 1 {
		t.Fatalf("post-recovery prediction = %d, want 1", pred.EventID)
	}
	st := p.Stats()
	if st.Unknown != 1 {
		t.Fatalf("Unknown = %d, want 1", st.Unknown)
	}
}

// TestSkippedEventsReanchor simulates the program taking a different code
// path: a chunk of the trace is skipped. The predictor must re-anchor and
// continue predicting.
func TestSkippedEventsReanchor(t *testing.T) {
	var seq []int32
	for i := 0; i < 10; i++ {
		seq = append(seq, 0, 1, 2, 3, 4)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	p.Observe(0)
	p.Observe(1)
	// Skip 2 and 3; jump straight to 4.
	p.Observe(4)
	if !p.Tracking() {
		t.Fatal("lost tracking after a skip of known events")
	}
	pred, ok := p.PredictAt(1)
	if !ok || pred.EventID != 0 {
		t.Fatalf("prediction after skip = (%v, %v), want event 0", pred, ok)
	}
}

// TestPredictSequence checks the multi-step query returns consistent
// distances.
func TestPredictSequence(t *testing.T) {
	var seq []int32
	for i := 0; i < 20; i++ {
		seq = append(seq, 0, 1)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	p.Observe(0)
	preds := p.PredictSequence(6)
	if len(preds) != 6 {
		t.Fatalf("got %d predictions, want 6", len(preds))
	}
	for i, pr := range preds {
		if pr.Distance != i+1 {
			t.Fatalf("prediction %d has distance %d", i, pr.Distance)
		}
		want := int32((i + 1) % 2)
		if pr.EventID != want {
			t.Fatalf("distance %d: predicted %d, want %d", pr.Distance, pr.EventID, want)
		}
	}
}

// TestEndOfTrace checks predictions stop gracefully at the end of the
// reference trace.
func TestEndOfTrace(t *testing.T) {
	seq := seqOf("abc")
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	for _, e := range seq {
		p.Observe(e)
	}
	if _, ok := p.PredictAt(1); ok {
		t.Fatal("prediction past the end of the trace")
	}
}

// TestDurationPrediction builds a trace with a synthetic virtual clock and
// checks that the predicted duration between events reflects the recorded
// deltas. Event 0 is always followed 100ns later by event 1, then 900ns
// later by event 0 again.
func TestDurationPrediction(t *testing.T) {
	g := grammar.New()
	timing := model.NewTiming()
	// Build grammar and timing via the recorder path equivalent: construct
	// grammar, then attach ByEvent stats directly.
	var seq []int32
	for i := 0; i < 50; i++ {
		seq = append(seq, 0, 1)
	}
	for _, e := range seq {
		g.Append(e)
	}
	f := g.Freeze()
	// Terminal runs: find refs for events 0 and 1 and assign durations at
	// the shallowest context depth (deeper lookups fall back to it).
	for _, ref := range f.TermSites[0] {
		timing.AddPath([]grammar.UserRef{ref}, 0, 900)
	}
	for _, ref := range f.TermSites[1] {
		timing.AddPath([]grammar.UserRef{ref}, 1, 100)
	}
	tr := &model.Trace{Grammar: f, Events: []string{"a", "b"}, Timing: timing}
	p := New(tr, Config{})
	p.StartAtBeginning()
	p.Observe(0)

	pred, ok := p.PredictDurationUntil(1, 16)
	if !ok {
		t.Fatal("no duration prediction for next event 1")
	}
	if pred.ExpectedNs < 99 || pred.ExpectedNs > 101 {
		t.Fatalf("expected ~100ns to event 1, got %v", pred.ExpectedNs)
	}
	pred, ok = p.PredictDurationUntil(0, 16)
	if !ok {
		t.Fatal("no duration prediction for next event 0")
	}
	if pred.ExpectedNs < 999 || pred.ExpectedNs > 1001 {
		t.Fatalf("expected ~1000ns to event 0, got %v", pred.ExpectedNs)
	}
}

// TestQuickExactReplayProperty: for random repetitive sequences, an exact
// replay from the beginning predicts every next event correctly.
func TestQuickExactReplayProperty(t *testing.T) {
	f := func(motifRaw []uint8, repsRaw uint8) bool {
		if len(motifRaw) == 0 {
			return true
		}
		if len(motifRaw) > 8 {
			motifRaw = motifRaw[:8]
		}
		reps := int(repsRaw%20) + 2
		var seq []int32
		for r := 0; r < reps; r++ {
			for _, m := range motifRaw {
				seq = append(seq, int32(m%4))
			}
		}
		tr := traceOf(seq)
		p := New(tr, Config{})
		p.StartAtBeginning()
		for i, e := range seq {
			pred, ok := p.PredictAt(1)
			if !ok || pred.EventID != e {
				t.Logf("step %d: predicted (%v,%v), want %d; seq=%v", i, pred.EventID, ok, e, seq)
				return false
			}
			p.Observe(e)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAccuracyDegradesGracefullyUnderNoise injects random wrong events and
// checks the predictor keeps producing predictions (resilience, paper
// section III-E) with reasonable accuracy on the clean events.
func TestAccuracyDegradesGracefullyUnderNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var seq []int32
	for i := 0; i < 200; i++ {
		seq = append(seq, 0, 1, 2, 3)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	correct, total := 0, 0
	for i := 0; i < len(seq)-1; i++ {
		if rng.Float64() < 0.05 {
			p.Observe(int32(50 + rng.Intn(5))) // unexpected event
		}
		p.Observe(seq[i])
		pred, ok := p.PredictAt(1)
		total++
		if ok && pred.EventID == seq[i+1] {
			correct++
		}
	}
	if ratio := float64(correct) / float64(total); ratio < 0.6 {
		t.Fatalf("accuracy under 5%% noise = %.2f, want >= 0.6", ratio)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxCandidates != defaultMaxCandidates || c.MaxLookahead != defaultMaxLookahead {
		t.Fatalf("defaults not applied: %+v", c)
	}
	c = Config{MaxCandidates: 5, MaxLookahead: 7}.withDefaults()
	if c.MaxCandidates != 5 || c.MaxLookahead != 7 {
		t.Fatalf("explicit config overridden: %+v", c)
	}
}

func TestPredictWithoutObservations(t *testing.T) {
	tr := traceOf(seqOf("abab"))
	p := New(tr, Config{})
	if _, ok := p.PredictAt(1); ok {
		t.Fatal("prediction without any observation")
	}
	if p.Tracking() || p.Anchored() || p.Confidence() != 0 {
		t.Fatal("fresh predictor claims state")
	}
}

func BenchmarkObserveExactReplay(b *testing.B) {
	var seq []int32
	for i := 0; i < 1000; i++ {
		seq = append(seq, 0, 1, 2, 1, 2, 3)
	}
	tr := traceOf(seq)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(tr, Config{})
		p.StartAtBeginning()
		for _, e := range seq {
			p.Observe(e)
		}
	}
}

func BenchmarkPredictAtDistance(b *testing.B) {
	var seq []int32
	for i := 0; i < 1000; i++ {
		seq = append(seq, 0, 1, 2, 1, 2, 3)
	}
	tr := traceOf(seq)
	for _, d := range []int{1, 8, 64} {
		b.Run(string(rune('0'+d/10))+string(rune('0'+d%10)), func(b *testing.B) {
			p := New(tr, Config{})
			p.StartAtBeginning()
			p.Observe(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.PredictAt(d)
			}
		})
	}
}

func TestReset(t *testing.T) {
	tr := traceOf(seqOf("ababab"))
	p := New(tr, Config{})
	p.StartAtBeginning()
	p.Observe(0)
	if !p.Tracking() {
		t.Fatal("not tracking before reset")
	}
	p.Reset()
	if p.Tracking() || p.Stats().Observed != 0 {
		t.Fatal("Reset incomplete")
	}
	// Usable again.
	p.Observe(0)
	if pred, ok := p.PredictAt(1); !ok || pred.EventID != 1 {
		t.Fatalf("post-reset prediction broken: %v %v", pred, ok)
	}
}
