// Package predictor implements PYTHIA-PREDICT (paper sections II-B and
// II-C): it follows the progress of a running application through the
// grammar of a reference execution and answers queries about the future —
// which event will occur a given number of events from now, with what
// probability, and after how long.
//
// The predictor maintains a set of weighted hypotheses (progress sequences).
// While the execution matches the reference trace exactly the set contains a
// single root-anchored position and tracking is deterministic and cheap.
// After an unexpected event the predictor re-anchors on all grammar
// occurrences of the last seen event and lets subsequent observations narrow
// the set (tolerance to unexpected events, section II-B2).
package predictor

import (
	"sort"

	"repro/internal/grammar"
	"repro/internal/model"
	"repro/internal/progress"
)

// Config tunes the predictor.
type Config struct {
	// MaxCandidates caps the number of simultaneous hypotheses kept while
	// tracking observations. Zero selects the default (64).
	MaxCandidates int
	// MaxLookahead caps the number of branches kept at each step of a
	// prediction simulation. Zero selects the default (256).
	MaxLookahead int
	// DisableCache turns off the incremental prediction cache and the
	// in-place single-hypothesis advance: every query then re-simulates
	// from scratch and every observation goes through the general
	// hypothesis machinery. It is the reference implementation that the
	// differential tests and the cache ablation compare against.
	DisableCache bool
	// WatchdogWindow is the divergence watchdog's observation window: the
	// number of recent observations over which the prediction hit-rate is
	// measured. Zero selects the default (128); negative disables the
	// watchdog entirely.
	WatchdogWindow int
	// WatchdogFloor is the minimum windowed hit-rate; strictly below it
	// the predictor self-quarantines (Predict* return ok=false) until the
	// rate recovers. Zero selects the default (0.35).
	WatchdogFloor float64
	// WatchdogRecover is the hit-rate at which a quarantined predictor
	// resumes answering. Zero selects the default (WatchdogFloor + 0.15,
	// capped at 1): the hysteresis gap keeps the state from flapping.
	WatchdogRecover float64
}

const (
	defaultMaxCandidates = 64
	defaultMaxLookahead  = 256
)

func (c Config) withDefaults() Config {
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = defaultMaxCandidates
	}
	if c.MaxLookahead <= 0 {
		c.MaxLookahead = defaultMaxLookahead
	}
	if c.WatchdogWindow == 0 {
		c.WatchdogWindow = defaultWatchdogWindow
	}
	if c.WatchdogFloor <= 0 {
		c.WatchdogFloor = defaultWatchdogFloor
	}
	if c.WatchdogFloor > 1 {
		c.WatchdogFloor = 1
	}
	if c.WatchdogRecover <= 0 {
		c.WatchdogRecover = c.WatchdogFloor + 0.15
	}
	if c.WatchdogRecover > 1 {
		c.WatchdogRecover = 1
	}
	if c.WatchdogRecover < c.WatchdogFloor {
		c.WatchdogRecover = c.WatchdogFloor
	}
	return c
}

// Stats counts tracking outcomes since the predictor was created.
type Stats struct {
	// Observed is the total number of events submitted.
	Observed int64
	// Followed counts observations that matched a tracked hypothesis.
	Followed int64
	// ReAnchored counts observations that matched no hypothesis and forced
	// re-anchoring on the event's grammar occurrences.
	ReAnchored int64
	// Unknown counts observations of events absent from the reference
	// trace, after which the oracle has no information until re-anchored.
	Unknown int64
}

// Predictor tracks one thread of execution against one reference trace.
// It is not safe for concurrent use; runtimes keep one per thread.
type Predictor struct {
	f      *grammar.Frozen
	timing *model.Timing
	cfg    Config
	cands  []progress.Branch
	// pending marks that the candidate set designates the *next* event to
	// be observed rather than the last observed one (after
	// StartAtBeginning).
	pending bool
	stats   Stats
	scratch []progress.Branch

	// live advances the lone hypothesis in place on the tracking fast
	// path; while liveOK is true, cands[0].Pos aliases live's internal
	// buffer (package-internal discipline: positions handed out of the
	// predictor are never views of live).
	live   progress.Stepper
	liveOK bool
	// cache is the incremental prediction cache (see cache.go).
	cache predCache
	// refsBuf is the reusable path buffer for timing lookups on the
	// cached query path.
	refsBuf []grammar.UserRef
	// wd is the divergence watchdog (see watchdog.go).
	wd watchdog
}

// New returns a predictor for the reference trace. The candidate set starts
// empty: either call StartAtBeginning when the run is known to start where
// the reference trace starts, or just Observe events and let the predictor
// anchor itself (which tolerates attaching mid-run, as the paper's
// evaluation does).
func New(tr *model.Trace, cfg Config) *Predictor {
	p := &Predictor{f: tr.Grammar, timing: tr.Timing, cfg: cfg.withDefaults()}
	p.wd.init(p.cfg)
	return p
}

// StartAtBeginning seeds tracking at the first event of the reference trace.
// The next Observe call is expected to report that event.
func (p *Predictor) StartAtBeginning() {
	p.invalidate()
	p.wd.reset()
	p.cands = p.cands[:0]
	if pos, ok := progress.Start(p.f); ok {
		p.cands = append(p.cands, progress.Branch{Pos: pos, Weight: 1})
		p.pending = true
	}
}

// Observe submits the next event of the current execution and updates the
// hypothesis set and the divergence watchdog. Tracking continues even while
// the watchdog holds predictions back — that is what lets a re-converging
// execution lift its own quarantine.
// pythia:hotpath — one call per submitted event in predict mode.
func (p *Predictor) Observe(eventID int32) {
	if !p.wd.enabled {
		p.track(eventID)
		return
	}
	f0, r0 := p.stats.Followed, p.stats.ReAnchored
	p.track(eventID)
	p.wd.record(p.stats.Followed > f0, p.stats.ReAnchored > r0)
}

// track is Observe without the watchdog accounting: it classifies the event
// as followed, re-anchored or unknown and updates the hypothesis set.
// pythia:hotpath — one call per submitted event in predict mode.
func (p *Predictor) track(eventID int32) {
	p.stats.Observed++
	if p.pending {
		p.pending = false
		if len(p.cands) == 1 && !p.cfg.DisableCache {
			// Single-hypothesis fast path: the candidate designates the
			// next event directly; nothing to merge or renormalise.
			if p.cands[0].Pos.Terminal(p.f) == eventID {
				p.stats.Followed++
				return
			}
			p.reAnchor(eventID)
			return
		}
		kept := p.scratch[:0]
		for _, c := range p.cands {
			if c.Pos.Terminal(p.f) == eventID {
				kept = append(kept, c)
			}
		}
		if len(kept) > 0 {
			p.stats.Followed++
			p.setCands(kept)
			return
		}
		p.reAnchor(eventID)
		return
	}
	if len(p.cands) == 0 {
		p.reAnchor(eventID)
		return
	}
	if len(p.cands) == 1 && !p.cfg.DisableCache && p.observeSingle(eventID) {
		return
	}
	next := p.scratch[:0]
	for _, c := range p.cands {
		for _, s := range progress.Successors(p.f, c.Pos, c.Weight) {
			if s.Pos.Terminal(p.f) == eventID {
				next = append(next, s)
			}
		}
	}
	if len(next) == 0 {
		p.reAnchor(eventID)
		return
	}
	p.stats.Followed++
	p.setCands(next)
}

// reAnchor rebuilds the hypothesis set from the grammar occurrences of
// eventID.
func (p *Predictor) reAnchor(eventID int32) {
	occ := progress.Occurrences(p.f, eventID)
	if len(occ) == 0 {
		p.stats.Unknown++
		p.invalidate()
		p.cands = p.cands[:0]
		return
	}
	p.stats.ReAnchored++
	p.setCands(occ)
}

// setCands merges duplicates, caps, renormalises and installs the set.
func (p *Predictor) setCands(branches []progress.Branch) {
	merged := mergeCap(branches, p.cfg.MaxCandidates, true)
	// Reuse the previous candidate slice as the next scratch buffer.
	p.scratch = p.cands[:0]
	p.cands = merged
	p.invalidate()
}

// Stats returns tracking counters.
func (p *Predictor) Stats() Stats { return p.stats }

// Tracking reports whether the predictor currently holds at least one
// hypothesis.
func (p *Predictor) Tracking() bool { return len(p.cands) > 0 }

// Anchored reports whether the dominant hypothesis is anchored at the
// grammar root, i.e. the position in the reference trace is fully known.
func (p *Predictor) Anchored() bool {
	return len(p.cands) > 0 && p.cands[0].Pos.Anchored()
}

// Candidates returns the current number of hypotheses.
func (p *Predictor) Candidates() int { return len(p.cands) }

// Confidence returns the weight of the dominant hypothesis (0 when lost).
func (p *Predictor) Confidence() float64 {
	if len(p.cands) == 0 {
		return 0
	}
	return p.cands[0].Weight
}

// Prediction is one predicted future event.
type Prediction struct {
	// EventID is the predicted event.
	EventID int32
	// Probability is the estimated probability of the prediction, from
	// occurrence counting in the reference trace.
	Probability float64
	// Distance is the number of events from now (1 = next event).
	Distance int
	// ExpectedNs is the expected elapsed time from the last observed event
	// until this one, according to the timing model (0 when the trace
	// carries no timing).
	ExpectedNs float64
}

// PredictAt predicts the event that will occur distance events from now
// (distance >= 1; 1 means the next event). ok is false when the predictor
// has no hypothesis or every hypothesis ends before the horizon.
// pythia:hotpath — the paper's per-query budget is ~0.05-2 µs (Fig. 9).
func (p *Predictor) PredictAt(distance int) (Prediction, bool) {
	if p.wd.quarantined {
		return Prediction{}, false
	}
	if distance >= 1 && p.cacheUsable() {
		if got := p.ensureWindow(distance); got >= distance {
			c := &p.cache
			idx := c.head + distance - 1
			var acc float64
			for _, m := range c.means[c.head : idx+1] {
				acc += m
			}
			return Prediction{
				EventID: c.evs[idx], Probability: 1,
				Distance: distance, ExpectedNs: acc,
			}, true
		} else if p.cache.state == cacheEnded {
			// The branch-free walk ends before the horizon: no
			// prediction, exactly as a fresh walk would conclude.
			return Prediction{}, false
		}
		// Branched beyond the window: the general machinery decides.
	}
	preds, ok := p.simulate(distance, nil)
	if !ok || len(preds) < distance {
		return Prediction{}, false
	}
	return preds[distance-1], true
}

// PredictSequence predicts the next n events, returning one Prediction per
// step (step i has Distance i+1). The slice may be shorter than n if every
// hypothesis reaches the end of the reference trace.
func (p *Predictor) PredictSequence(n int) []Prediction {
	if p.wd.quarantined {
		return nil
	}
	if n >= 1 && p.cacheUsable() {
		got := p.ensureWindow(n)
		if got >= n || p.cache.state == cacheEnded {
			if got > n {
				got = n
			}
			c := &p.cache
			out := make([]Prediction, got)
			var acc float64
			for i := 0; i < got; i++ {
				acc += c.means[c.head+i]
				out[i] = Prediction{
					EventID: c.evs[c.head+i], Probability: 1,
					Distance: i + 1, ExpectedNs: acc,
				}
			}
			return out
		}
	}
	preds, _ := p.simulate(n, nil)
	return preds
}

// PredictDurationUntil predicts the elapsed time from now until the next
// occurrence of eventID, searching at most maxDistance events ahead.
// ok is false when the event is not predicted within the horizon.
func (p *Predictor) PredictDurationUntil(eventID int32, maxDistance int) (Prediction, bool) {
	if p.wd.quarantined {
		return Prediction{}, false
	}
	if maxDistance >= 1 && p.cacheUsable() {
		got := p.ensureWindow(maxDistance)
		if got >= maxDistance || p.cache.state == cacheEnded {
			c := &p.cache
			if got > maxDistance {
				got = maxDistance
			}
			var acc float64
			for i := 0; i < got; i++ {
				acc += c.means[c.head+i]
				if c.evs[c.head+i] == eventID {
					return Prediction{
						EventID: eventID, Probability: 1,
						Distance: i + 1, ExpectedNs: acc,
					}, true
				}
			}
			return Prediction{}, false
		}
		// Branched before the horizon: the general machinery decides.
	}
	var hit Prediction
	found := false
	p.simulate(maxDistance, func(pr Prediction) bool {
		if pr.EventID == eventID {
			hit = pr
			found = true
			return false
		}
		return true
	})
	return hit, found
}

// sim is one weighted look-ahead branch with its accumulated expected time.
type sim struct {
	br  progress.Branch
	acc float64
}

// simulate advances a copy of the hypothesis set up to horizon steps,
// producing the dominant prediction of every step. When stop is non-nil it
// is called with each step's dominant prediction and may halt the walk.
//
// The walk cost grows linearly with the horizon (paper Fig. 9): each step
// advances every kept branch by one terminal.
func (p *Predictor) simulate(horizon int, stop func(Prediction) bool) ([]Prediction, bool) {
	if horizon <= 0 || len(p.cands) == 0 {
		return nil, false
	}
	if len(p.cands) == 1 {
		// Fast path: a single hypothesis usually has exactly one successor
		// per step (always, when anchored at the root) — no branching,
		// merging or aggregation needed. This is the common case on a
		// faithful replay and what keeps per-query cost near the paper's
		// (Fig. 9). If the walk does branch (a partial hypothesis leaving
		// its known context), fall back to the general machinery; the stop
		// callback must therefore be a pure decision function, which all
		// callers' are.
		if preds, ok, done := p.simulateSingle(horizon, stop); done {
			return preds, ok
		}
	}
	var preds []Prediction
	var cur []sim
	for step := 1; step <= horizon; step++ {
		var nxt []sim
		switch {
		case step == 1 && p.pending:
			// Fresh start: the candidates already designate the next event.
			for _, c := range p.cands {
				nxt = append(nxt, sim{br: c})
			}
		case step == 1:
			for _, c := range p.cands {
				for _, b := range progress.Successors(p.f, c.Pos, c.Weight) {
					nxt = append(nxt, sim{br: b})
				}
			}
		default:
			for _, s := range cur {
				for _, b := range progress.Successors(p.f, s.br.Pos, s.br.Weight) {
					nxt = append(nxt, sim{br: b, acc: s.acc})
				}
			}
		}
		if len(nxt) == 0 {
			return preds, len(preds) > 0
		}
		if p.timing != nil {
			var refs []grammar.UserRef
			for i := range nxt {
				refs = nxt[i].br.Pos.AppendRefs(refs[:0])
				nxt[i].acc += p.timing.MeanForPath(refs, nxt[i].br.Pos.Terminal(p.f))
			}
		}
		cur = mergeCapSim(nxt, p.cfg.MaxLookahead)
		pr := dominant(p.f, cur, step)
		preds = append(preds, pr)
		if stop != nil && !stop(pr) {
			return preds, true
		}
	}
	return preds, true
}

// simulateSingle is the branch-free simulate: one hypothesis advanced one
// terminal at a time. done is false when the walk branched and the caller
// must redo the query with the general machinery.
func (p *Predictor) simulateSingle(horizon int, stop func(Prediction) bool) (preds []Prediction, ok, done bool) {
	pos := p.cands[0].Pos
	var acc float64
	var refs []grammar.UserRef
	preds = make([]Prediction, 0, horizon)
	for step := 1; step <= horizon; step++ {
		if step == 1 && p.pending {
			// The candidate already designates the next event.
		} else {
			brs := progress.Successors(p.f, pos, 1)
			if len(brs) == 0 {
				return preds, len(preds) > 0, true
			}
			if len(brs) > 1 {
				// Partial hypothesis left its known context: branch.
				return nil, false, false
			}
			pos = brs[0].Pos
		}
		ev := pos.Terminal(p.f)
		if p.timing != nil {
			refs = pos.AppendRefs(refs[:0])
			acc += p.timing.MeanForPath(refs, ev)
		}
		pr := Prediction{EventID: ev, Probability: 1, Distance: step, ExpectedNs: acc}
		preds = append(preds, pr)
		if stop != nil && !stop(pr) {
			return preds, true, true
		}
	}
	return preds, true, true
}

// dominant aggregates branch weights per event id and returns the heaviest
// event of the step, with its probability and weighted expected time.
func dominant(f *grammar.Frozen, branches []sim, step int) Prediction {
	type agg struct {
		w   float64
		acc float64
	}
	byEvent := make(map[int32]agg, 8)
	var total float64
	for _, s := range branches {
		ev := s.br.Pos.Terminal(f)
		a := byEvent[ev]
		a.w += s.br.Weight
		a.acc += s.br.Weight * s.acc
		byEvent[ev] = a
		total += s.br.Weight
	}
	best := Prediction{EventID: -1, Distance: step}
	bestW := -1.0
	for ev, a := range byEvent {
		if a.w > bestW || (a.w == bestW && ev < best.EventID) {
			bestW = a.w
			best.EventID = ev
			if a.w > 0 {
				best.ExpectedNs = a.acc / a.w
			}
		}
	}
	if total > 0 {
		best.Probability = bestW / total
	}
	return best
}

// mergeCap merges branches with identical positions, sorts by descending
// weight and keeps at most max, optionally renormalising weights to sum
// to 1.
func mergeCap(branches []progress.Branch, max int, renorm bool) []progress.Branch {
	byKey := make(map[string]int, len(branches))
	out := make([]progress.Branch, 0, len(branches))
	for _, b := range branches {
		k := b.Pos.Key()
		if i, ok := byKey[k]; ok {
			out[i].Weight += b.Weight
			continue
		}
		byKey[k] = len(out)
		out = append(out, b)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	if len(out) > max {
		out = out[:max]
	}
	if renorm {
		var total float64
		for _, b := range out {
			total += b.Weight
		}
		if total > 0 {
			for i := range out {
				out[i].Weight /= total
			}
		}
	}
	return out
}

// mergeCapSim is mergeCap for look-ahead branches, merging accumulated
// durations by weighted average.
func mergeCapSim(branches []sim, max int) []sim {
	byKey := make(map[string]int, len(branches))
	out := make([]sim, 0, len(branches))
	for _, s := range branches {
		k := s.br.Pos.Key()
		if i, ok := byKey[k]; ok {
			w1, w2 := out[i].br.Weight, s.br.Weight
			if w1+w2 > 0 {
				out[i].acc = (out[i].acc*w1 + s.acc*w2) / (w1 + w2)
			}
			out[i].br.Weight += w2
			continue
		}
		byKey[k] = len(out)
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].br.Weight > out[j].br.Weight })
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// Reset clears all hypotheses and counters; the predictor behaves as freshly
// created. Runtimes use it at phase boundaries where the past context is
// known to be irrelevant (e.g. after a checkpoint restore).
func (p *Predictor) Reset() {
	p.invalidate()
	p.wd.reset()
	p.cands = p.cands[:0]
	p.pending = false
	p.stats = Stats{}
}
