package predictor

// The incremental prediction cache (this file) makes the steady-state
// oracle loop — one Observe plus one PredictAt per event on a faithful
// replay — amortized O(1) and allocation-free. A fresh simulate walk costs
// O(distance) per query (paper Fig. 9); on the single-hypothesis fast path
// the walk is branch-free and deterministic, so its result can be memoized
// as a sliding window of future events:
//
//   - the window holds the next events (and their per-step expected
//     durations) from the current position onward; queries read it
//     directly, extending it on demand with one in-place Stepper advance
//     per step;
//   - Observe slides the window by one entry instead of discarding it
//     (consumeCache), keeping the cached look-ahead valid across the whole
//     replay;
//   - any event that breaks the single-hypothesis fast path — re-anchor,
//     branching, multi-candidate tracking, Reset — invalidates the cache
//     (invalidate); the next query rebuilds it from the current position,
//     reusing all buffers.
//
// Invariant: while the cache is valid, the end stepper's position equals
// the current position advanced by len(evs)-head terminals, and evs[head+i]
// is the event i+1 steps from now. Expected durations are stored per step
// (means) and summed on read in ascending order, so cached results are
// bit-identical to a fresh walk's accumulation — the property the
// differential tests pin down.

import "repro/internal/progress"

// cacheState describes whether the window can still grow.
type cacheState uint8

const (
	// cacheExtendable: the end stepper can advance further.
	cacheExtendable cacheState = iota
	// cacheEnded: the walk reached the end of the reference trace.
	cacheEnded
	// cacheBranched: the walk is no longer branch-free beyond the window;
	// queries past it fall back to the general machinery.
	cacheBranched
)

// predCache is the memoized branch-free look-ahead window.
type predCache struct {
	valid bool
	state cacheState
	// evs[head+i] is the event id predicted i+1 steps from now; entries
	// below head are consumed.
	evs  []int32
	head int
	// means[j] is the expected duration of the step predicting evs[j]
	// (zero without a timing model).
	means []float64
	// end is the position after the last cached step.
	end progress.Stepper
}

// invalidate drops all incremental state after a hypothesis-set change
// outside the fast paths (re-anchor, branching, Reset, StartAtBeginning).
func (p *Predictor) invalidate() {
	p.cache.valid = false
	p.liveOK = false
}

// cacheUsable reports whether queries may be served from the incremental
// cache, (re)building it at the current position if needed. The cache
// serves a lone, non-pending hypothesis with caching enabled.
func (p *Predictor) cacheUsable() bool {
	if p.cfg.DisableCache || p.pending || len(p.cands) != 1 {
		return false
	}
	if !p.cache.valid {
		p.buildCache()
	}
	return true
}

// buildCache seeds the cache at the current single hypothesis; the window
// starts empty and grows on demand. All buffers are reused.
func (p *Predictor) buildCache() {
	c := &p.cache
	c.evs = c.evs[:0]
	c.means = c.means[:0]
	c.head = 0
	c.state = cacheExtendable
	c.end.Reset(p.f, p.cands[0].Pos)
	c.valid = true
}

// ensureWindow grows the window to n unconsumed entries and returns the
// number available, which is smaller than n when the walk reaches the end
// of the trace or branches first. Window growth is amortized allocation-
// free: the backing arrays stop growing once the largest query distance has
// been seen, and consumeCache compacts the consumed prefix in place.
// pythia:hotpath — one in-place advance per new window step.
func (p *Predictor) ensureWindow(n int) int {
	c := &p.cache
	for len(c.evs)-c.head < n && c.state == cacheExtendable {
		switch c.end.Advance() {
		case progress.AdvanceOK:
			ev := c.end.Terminal()
			var mean float64
			if p.timing != nil {
				p.refsBuf = c.end.AppendRefs(p.refsBuf[:0])
				mean = p.timing.MeanForPath(p.refsBuf, ev)
			}
			c.evs = append(c.evs, ev)
			c.means = append(c.means, mean)
		case progress.AdvanceEnd:
			c.state = cacheEnded
		case progress.AdvanceBranch:
			c.state = cacheBranched
		}
	}
	return len(c.evs) - c.head
}

// consumeCache slides the window past one observed event: the cache
// advance, O(1) amortized. With an empty window the origin can no longer
// move in lockstep, so the cache is dropped and the next query rebuilds it
// from the current position (reusing the buffers).
// pythia:hotpath — one call per observation on the fast path.
func (p *Predictor) consumeCache() {
	c := &p.cache
	if !c.valid {
		return
	}
	if c.head == len(c.evs) {
		c.valid = false
		return
	}
	c.head++
	switch {
	case c.head == len(c.evs):
		c.evs = c.evs[:0]
		c.means = c.means[:0]
		c.head = 0
	case c.head >= 1024 && 2*c.head >= len(c.evs):
		// Compact the consumed prefix so the arrays stop growing: copy
		// the live window down and re-origin head. Amortized O(1) per
		// consume, no allocation.
		m := copy(c.evs, c.evs[c.head:])
		copy(c.means, c.means[c.head:])
		c.evs = c.evs[:m]
		c.means = c.means[:m]
		c.head = 0
	}
}

// observeSingle advances the lone hypothesis in place through its unique
// successor, the tracking fast path. It reports false when the advance
// would branch, leaving the predictor untouched so the caller falls
// through to the general machinery.
// pythia:hotpath — zero allocations per observation in steady state.
func (p *Predictor) observeSingle(eventID int32) bool {
	if !p.liveOK {
		p.live.Reset(p.f, p.cands[0].Pos)
		p.liveOK = true
	}
	switch p.live.Advance() {
	case progress.AdvanceBranch:
		return false
	case progress.AdvanceEnd:
		// No successor: same outcome as an empty Successors set.
		p.reAnchor(eventID)
		return true
	}
	if p.live.Terminal() != eventID {
		// The walk is branch-free, so no other successor can match.
		p.reAnchor(eventID)
		return true
	}
	p.stats.Followed++
	p.cands[0] = progress.Branch{Pos: p.live.PosView(), Weight: 1}
	p.consumeCache()
	return true
}
