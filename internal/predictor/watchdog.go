package predictor

// The divergence watchdog (this file) keeps a confidently-wrong oracle from
// steering the host runtime. A predict-mode oracle happily re-anchors and
// keeps answering long after the execution has drifted from the reference
// trace; the watchdog measures the oracle's own accuracy — was the observed
// event the one a distance-1 prediction would have named? — plus the
// re-anchor rate, over consecutive fixed-size windows of observations, and
// pulls predictions (Predict* return ok=false) when a window's hit-rate
// falls below a configured floor. Tracking continues while quarantined, so
// when the execution re-converges with the reference the hit-rate recovers
// and the watchdog releases the quarantine automatically — the
// adaptive-openmp fallback ladder in reverse.
//
// The accounting is deliberately epoch-based (tumbling windows judged at
// each boundary) rather than a sliding window: per observation it costs two
// predictable branches and an increment, which keeps the default-on
// watchdog invisible on the Observe hot path. The price is detection
// latency of at most two windows instead of one.

// Watchdog defaults: 128-observation windows, quarantine below 35% hits,
// release at 50% (hysteresis keeps the state from flapping around the
// floor).
const (
	defaultWatchdogWindow  = 128
	defaultWatchdogFloor   = 0.35
	defaultWatchdogRecover = 0.50
)

// WatchdogStatus is a snapshot of the divergence watchdog.
type WatchdogStatus struct {
	// Enabled reports whether the watchdog is active.
	Enabled bool
	// Window is the observation window length.
	Window int
	// Observed is the number of observations in the current (partial)
	// window; the watchdog only judges completed windows.
	Observed int
	// HitRate is the fraction of the most recently completed window where
	// the observed event matched the distance-1 prediction (0 until a
	// window completes).
	HitRate float64
	// ReAnchorRate is the fraction of the most recently completed window
	// where the observation forced a re-anchor.
	ReAnchorRate float64
	// Quarantined reports whether predictions are currently pulled.
	Quarantined bool
	// Quarantines counts quarantine entries since the predictor was
	// created.
	Quarantines int64
}

// watchdog is the windowed accuracy monitor embedded in every Predictor.
type watchdog struct {
	enabled bool
	window  int
	// floorCount / recoverCount are the thresholds premultiplied by the
	// window length, so the per-window judgment is an integer compare.
	floorCount   int
	recoverCount int

	n       int // observations in the current window
	hitN    int // hits in the current window
	reanchN int // re-anchors in the current window

	// Counts of the last completed window, for WatchdogStatus.
	lastHitN    int
	lastReanchN int
	judged      bool // at least one window has completed

	quarantined bool
	quarantines int64
}

// init configures the watchdog from the (defaulted) Config.
func (w *watchdog) init(cfg Config) {
	if cfg.WatchdogWindow < 0 {
		return
	}
	w.enabled = true
	w.window = cfg.WatchdogWindow
	// ceil(rate*window): quarantine strictly below the floor, recover at or
	// above the recovery rate.
	w.floorCount = ceilRate(cfg.WatchdogFloor, w.window)
	w.recoverCount = ceilRate(cfg.WatchdogRecover, w.window)
}

// ceilRate returns ceil(rate*window) as the integer threshold equivalent.
func ceilRate(rate float64, window int) int {
	n := int(rate * float64(window))
	if float64(n) < rate*float64(window) {
		n++
	}
	return n
}

// record folds one observation outcome into the current window, judging the
// quarantine state at each window boundary.
// pythia:hotpath — an increment and two predictable branches per Observe.
func (w *watchdog) record(hit, reanchored bool) {
	if hit {
		w.hitN++
	}
	if reanchored {
		w.reanchN++
	}
	w.n++
	if w.n >= w.window {
		w.judge()
	}
}

// judge closes the current window: updates the quarantine state against the
// thresholds and starts the next window. Runs once per window — cold.
func (w *watchdog) judge() {
	if !w.quarantined {
		if w.hitN < w.floorCount {
			w.quarantined = true
			w.quarantines++
		}
	} else if w.hitN >= w.recoverCount {
		w.quarantined = false
	}
	w.lastHitN, w.lastReanchN = w.hitN, w.reanchN
	w.judged = true
	w.n, w.hitN, w.reanchN = 0, 0, 0
}

// reset clears all windows and releases any quarantine (Reset /
// StartAtBeginning: the past accuracy is no longer meaningful).
func (w *watchdog) reset() {
	if !w.enabled {
		return
	}
	w.n, w.hitN, w.reanchN = 0, 0, 0
	w.lastHitN, w.lastReanchN = 0, 0
	w.judged = false
	w.quarantined = false
}

// Quarantined reports whether the divergence watchdog currently holds
// predictions back (Predict* return ok=false while true).
func (p *Predictor) Quarantined() bool { return p.wd.quarantined }

// Watchdog returns a snapshot of the divergence watchdog.
func (p *Predictor) Watchdog() WatchdogStatus {
	w := &p.wd
	st := WatchdogStatus{
		Enabled:     w.enabled,
		Window:      w.window,
		Observed:    w.n,
		Quarantined: w.quarantined,
		Quarantines: w.quarantines,
	}
	if w.judged && w.window > 0 {
		st.HitRate = float64(w.lastHitN) / float64(w.window)
		st.ReAnchorRate = float64(w.lastReanchN) / float64(w.window)
	}
	return st
}
