package predictor

import "testing"

// wdFor builds a watchdog from raw config values via the same path the
// Predictor uses.
func wdFor(window int, floor, recover float64) *watchdog {
	w := &watchdog{}
	w.init(Config{
		WatchdogWindow:  window,
		WatchdogFloor:   floor,
		WatchdogRecover: recover,
	}.withDefaults())
	return w
}

func TestWatchdogDisabled(t *testing.T) {
	w := &watchdog{}
	w.init(Config{WatchdogWindow: -1}.withDefaults())
	if w.enabled {
		t.Fatal("negative window did not disable the watchdog")
	}
}

func TestWatchdogNeverJudgesPartialWindow(t *testing.T) {
	w := wdFor(64, 0.35, 0.5)
	for i := 0; i < 63; i++ {
		w.record(false, true) // all misses
	}
	if w.quarantined {
		t.Fatal("quarantined before the window filled")
	}
	w.record(false, true) // 64th observation completes the window
	if !w.quarantined {
		t.Fatal("not quarantined at 0% hit-rate over a full window")
	}
}

func TestWatchdogHysteresis(t *testing.T) {
	w := wdFor(64, 0.35, 0.5)
	// Fill with misses → quarantined.
	for i := 0; i < 64; i++ {
		w.record(false, false)
	}
	if !w.quarantined {
		t.Fatal("not quarantined")
	}
	// Hover between floor and recover (~40% hits): must stay quarantined.
	for i := 0; i < 256; i++ {
		w.record(i%5 < 2, false)
	}
	if !w.quarantined {
		t.Fatal("released between floor and recovery threshold (hysteresis broken)")
	}
	// Sustained accuracy above the recovery rate releases.
	for i := 0; i < 64; i++ {
		w.record(true, false)
	}
	if w.quarantined {
		t.Fatal("not released at 100% hit-rate")
	}
	if w.quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", w.quarantines)
	}
}

func TestWatchdogEpochAccounting(t *testing.T) {
	w := wdFor(128, 0.35, 0.5)
	// Alternate hits and misses across five complete windows; every closed
	// window must tally exactly half the slots as hits.
	for i := 0; i < 128*5; i++ {
		w.record(i%2 == 0, i%3 == 0)
	}
	if w.n != 0 || !w.judged {
		t.Fatalf("five exact windows left a partial window: n=%d judged=%v", w.n, w.judged)
	}
	if w.lastHitN != 64 {
		t.Fatalf("lastHitN = %d after alternating stream, want 64", w.lastHitN)
	}
	if w.quarantined {
		t.Fatal("quarantined at 50% hit-rate with floor 35%")
	}
}

func TestWatchdogReset(t *testing.T) {
	w := wdFor(64, 0.35, 0.5)
	for i := 0; i < 64; i++ {
		w.record(false, false)
	}
	if !w.quarantined {
		t.Fatal("precondition: quarantined")
	}
	w.reset()
	if w.quarantined || w.n != 0 || w.hitN != 0 || w.reanchN != 0 || w.judged {
		t.Fatalf("reset left state behind: %+v", w)
	}
}

// TestPredictorQuarantinePullsAnswers drives a real Predictor off the rails
// and checks the query surface goes dark while Quarantined() is true.
func TestPredictorQuarantinePullsAnswers(t *testing.T) {
	seq := make([]int32, 0, 400)
	for i := 0; i < 200; i++ {
		seq = append(seq, 0, 1)
	}
	p := New(traceOf(seq), Config{})
	p.StartAtBeginning()
	for i := 0; i < 64; i++ {
		p.Observe(int32(i % 2)) // on pattern
	}
	if _, ok := p.PredictAt(1); !ok {
		t.Fatal("no prediction on a converged stream")
	}
	for i := 0; i < 400; i++ {
		p.Observe(int32(7 + i%5)) // off the alphabet
	}
	if !p.Quarantined() {
		st := p.Watchdog()
		t.Fatalf("not quarantined after 400 off-trace events (hit %.2f reanchor %.2f)",
			st.HitRate, st.ReAnchorRate)
	}
	if _, ok := p.PredictAt(1); ok {
		t.Fatal("PredictAt answered while quarantined")
	}
	if got := p.PredictSequence(4); got != nil {
		t.Fatalf("PredictSequence answered while quarantined: %v", got)
	}
	if _, ok := p.PredictDurationUntil(1, 8); ok {
		t.Fatal("PredictDurationUntil answered while quarantined")
	}
	st := p.Watchdog()
	if !st.Enabled || !st.Quarantined || st.Quarantines != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestCeilRate(t *testing.T) {
	cases := []struct {
		rate   float64
		window int
		want   int
	}{
		{0.35, 128, 45}, // 44.8 → 45
		{0.5, 128, 64},
		{0.5, 64, 32},
		{0, 64, 0},
		{1, 64, 64},
	}
	for _, c := range cases {
		if got := ceilRate(c.rate, c.window); got != c.want {
			t.Errorf("ceilRate(%v, %d) = %d, want %d", c.rate, c.window, got, c.want)
		}
	}
}
