package predictor

import (
	"math"
	"testing"
)

// TestDistributionBranchingFuture builds a trace where event 0 is followed
// by 1 three quarters of the time and by 2 one quarter of the time, then
// checks the distribution reflects those odds.
func TestDistributionBranchingFuture(t *testing.T) {
	var seq []int32
	for i := 0; i < 40; i++ {
		seq = append(seq, 0, 1, 0, 1, 0, 1, 0, 2)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})

	// Anchor ambiguously: observe a single 0 with no context.
	p.Observe(0)
	dist := p.PredictDistribution(1)
	if len(dist) < 2 {
		t.Fatalf("distribution has %d entries, want 2", len(dist))
	}
	var total float64
	probs := map[int32]float64{}
	for _, a := range dist {
		probs[a.EventID] = a.Probability
		total += a.Probability
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", total)
	}
	if dist[0].EventID != 1 {
		t.Fatalf("dominant next event = %d, want 1", dist[0].EventID)
	}
	// Roughly 3:1 odds (the grammar's occurrence counting is approximate in
	// run-length contexts; allow slack).
	if probs[1] < 0.55 || probs[2] > 0.45 {
		t.Fatalf("odds = %v, want roughly 3:1", probs)
	}
}

func TestDistributionDeterministicFuture(t *testing.T) {
	var seq []int32
	for i := 0; i < 30; i++ {
		seq = append(seq, 3, 4)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	p.Observe(3)
	dist := p.PredictDistribution(1)
	if len(dist) != 1 || dist[0].EventID != 4 || dist[0].Probability < 0.999 {
		t.Fatalf("distribution = %v, want certain 4", dist)
	}
}

func TestDistributionEmptyWhenLost(t *testing.T) {
	tr := traceOf([]int32{0, 1, 0, 1})
	p := New(tr, Config{})
	if d := p.PredictDistribution(1); d != nil {
		t.Fatalf("distribution without observations = %v", d)
	}
	p.Observe(9) // unknown
	if d := p.PredictDistribution(1); d != nil {
		t.Fatalf("distribution while lost = %v", d)
	}
}

func TestExpectedPathFollowsTruth(t *testing.T) {
	var seq []int32
	for i := 0; i < 25; i++ {
		seq = append(seq, 0, 1, 2)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	p.Observe(0)
	path := p.ExpectedPath(6)
	if len(path) != 6 {
		t.Fatalf("path length %d, want 6", len(path))
	}
	want := []int32{1, 2, 0, 1, 2, 0}
	for i, step := range path {
		if step.Distance != i+1 {
			t.Fatalf("step %d distance %d", i, step.Distance)
		}
		if step.EventID != want[i] {
			t.Fatalf("step %d event %d, want %d", i, step.EventID, want[i])
		}
	}
}

func TestExpectedPathStopsAtTraceEnd(t *testing.T) {
	tr := traceOf([]int32{0, 1, 2})
	p := New(tr, Config{})
	p.StartAtBeginning()
	p.Observe(0)
	path := p.ExpectedPath(10)
	if len(path) != 2 {
		t.Fatalf("path length %d, want 2 (events 1 and 2 remain)", len(path))
	}
}

// TestFastPathSpillMatchesGeneral forces the single-hypothesis fast walk to
// branch mid-lookahead (a partial hypothesis leaving its anchor rule) and
// checks a sane prediction still comes out of the spill into the general
// machinery.
func TestFastPathSpillMatchesGeneral(t *testing.T) {
	// Grammar where rule contexts diverge: blocks "0 1 2" and "0 1 3".
	var seq []int32
	for i := 0; i < 50; i++ {
		seq = append(seq, 0, 1, 2, 0, 1, 3)
	}
	tr := traceOf(seq)
	// Re-anchor on 0 (ambiguous context) and keep a single merged candidate
	// by capping the hypothesis set to one.
	p2 := New(tr, Config{MaxCandidates: 1})
	p2.Observe(0)
	if p2.Candidates() != 1 {
		t.Fatalf("candidates = %d, want 1", p2.Candidates())
	}
	// Distance 2 crosses the block boundary where contexts branch.
	pred, ok := p2.PredictAt(2)
	if !ok {
		t.Fatal("no prediction across the branch point")
	}
	if pred.EventID != 2 && pred.EventID != 3 {
		t.Fatalf("predicted %d, want 2 or 3", pred.EventID)
	}
	if pred.Probability <= 0 || pred.Probability > 1 {
		t.Fatalf("probability = %v", pred.Probability)
	}
}

// TestFastPathAndGeneralAgreeOnAnchoredWalk: with a root-anchored single
// hypothesis, PredictSequence (fast path) must agree with the distribution
// query (general path) at every step.
func TestFastPathAndGeneralAgreeOnAnchoredWalk(t *testing.T) {
	var seq []int32
	for i := 0; i < 30; i++ {
		seq = append(seq, 0, 1, 2, 1)
	}
	tr := traceOf(seq)
	p := New(tr, Config{})
	p.StartAtBeginning()
	p.Observe(0)
	preds := p.PredictSequence(8)
	for i, pr := range preds {
		dist := p.PredictDistribution(i + 1)
		if len(dist) == 0 {
			t.Fatalf("no distribution at distance %d", i+1)
		}
		if dist[0].EventID != pr.EventID {
			t.Fatalf("distance %d: fast path %d, distribution %d",
				i+1, pr.EventID, dist[0].EventID)
		}
	}
}
