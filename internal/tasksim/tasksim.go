// Package tasksim is a task-based runtime system guided by Pythia — the
// third class of runtime the paper's introduction names ("communication
// libraries, task schedulers, or memory management systems"), with the
// paper's own example event: "the submission of a task to be processed".
//
// The scheduler executes batches of tasks on a fixed set of virtual workers.
// Without the oracle it schedules in submission order (FIFO), which suffers
// from the classic long-tail problem: a long task scheduled last leaves all
// but one worker idle. With the oracle, the scheduler asks Pythia for each
// submitted task's predicted duration (learned from the reference run's
// timing model) and applies Longest-Processing-Time-first — the textbook
// ~4/3-approximation — without needing any programmer annotation.
//
// Time is virtual and deterministic, like the other substrates.
package tasksim

import (
	"sort"

	"repro/pythia"
)

// Task is one unit of work: an identifying kind (the paper's event id) and
// its true cost, which the scheduler does NOT see — it only learns costs
// through Pythia's timing model.
type Task struct {
	Kind   string
	CostNs int64
}

// Stats summarises a run.
type Stats struct {
	Batches     int64
	Tasks       int64
	Predictions int64
	PredictMiss int64
	// MakespanNs is the total virtual time spent executing batches.
	MakespanNs int64
}

// Scheduler executes task batches on Workers virtual workers.
type Scheduler struct {
	// Workers is the degree of parallelism (virtual).
	Workers int
	// Oracle attaches Pythia; nil schedules FIFO with no instrumentation.
	Oracle *pythia.Oracle
	// UsePredictions enables LPT ordering from predicted durations
	// (predict mode only).
	UsePredictions bool

	th   *pythia.Thread
	vnow int64
	stat Stats
}

// New creates a scheduler.
func New(workers int, oracle *pythia.Oracle, usePredictions bool) *Scheduler {
	s := &Scheduler{Workers: workers, Oracle: oracle, UsePredictions: usePredictions}
	if oracle != nil {
		s.th = oracle.Thread(0)
	}
	return s
}

// Now returns the virtual clock.
func (s *Scheduler) Now() int64 { return s.vnow }

// Stats returns run statistics.
func (s *Scheduler) Stats() Stats { return s.stat }

// RunBatch submits the tasks, lets the oracle see every submission, orders
// them (FIFO or predicted-LPT), executes on the worker pool, and advances
// the clock by the batch makespan. It returns that makespan.
func (s *Scheduler) RunBatch(tasks []Task) int64 {
	s.stat.Batches++
	s.stat.Tasks += int64(len(tasks))

	type submitted struct {
		Task
		predicted int64
		index     int
	}
	subs := make([]submitted, len(tasks))
	for i, t := range tasks {
		subs[i] = submitted{Task: t, index: i, predicted: -1}
		if s.th != nil {
			// "task_submit:<kind>" is the key point; its *end* event is
			// what carries the task's duration in the timing model.
			start := s.Oracle.Intern("task_start." + t.Kind)
			end := s.Oracle.Intern("task_end." + t.Kind)
			s.th.SubmitAt(start, s.vnow)
			if s.UsePredictions {
				s.stat.Predictions++
				if pred, ok := s.th.PredictDurationUntil(end, 4); ok && pred.ExpectedNs > 0 {
					subs[i].predicted = int64(pred.ExpectedNs)
				} else {
					s.stat.PredictMiss++
				}
			}
			// The recording runs execute tasks inline between start/end so
			// the timing model learns per-kind durations.
			s.vnow += t.CostNs
			s.th.SubmitAt(end, s.vnow)
		}
	}

	if s.th != nil {
		// Instrumented runs already executed inline above (sequential
		// reference semantics, like a tracing run); the makespan below is
		// what the *scheduling decision* would achieve. Roll the clock back
		// so both modes charge only the scheduled makespan.
		for _, t := range tasks {
			s.vnow -= t.CostNs
		}
	}

	if s.UsePredictions {
		sort.SliceStable(subs, func(i, j int) bool {
			pi, pj := subs[i].predicted, subs[j].predicted
			if pi != pj {
				return pi > pj // longest predicted first
			}
			return subs[i].index < subs[j].index
		})
	}

	costs := make([]int64, len(subs))
	for i, sub := range subs {
		costs[i] = sub.CostNs
	}
	makespan := listScheduleMakespan(costs, s.Workers)
	s.vnow += makespan
	s.stat.MakespanNs += makespan
	return makespan
}

// listScheduleMakespan assigns tasks in the given order to the least-loaded
// worker and returns the resulting makespan — classic list scheduling, which
// becomes LPT when the order is longest-first.
func listScheduleMakespan(costs []int64, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	load := make([]int64, workers)
	for _, c := range costs {
		min := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[min] {
				min = w
			}
		}
		load[min] += c
	}
	max := int64(0)
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}
