package tasksim

import (
	"testing"

	"repro/pythia"
)

// workload builds the batches of a synthetic application: each batch mixes
// many short tasks with a couple of long ones, in an order that is bad for
// FIFO (long tasks last).
func workload(batches int) [][]Task {
	var out [][]Task
	for b := 0; b < batches; b++ {
		var batch []Task
		for i := 0; i < 14; i++ {
			batch = append(batch, Task{Kind: "short", CostNs: 100_000})
		}
		batch = append(batch,
			Task{Kind: "render", CostNs: 1_200_000},
			Task{Kind: "compress", CostNs: 900_000},
		)
		out = append(out, batch)
	}
	return out
}

func run(s *Scheduler, batches [][]Task) int64 {
	for _, b := range batches {
		s.RunBatch(b)
	}
	return s.Now()
}

func TestListScheduleMakespan(t *testing.T) {
	// 4 workers, costs 3,3,3,3 → one each → makespan 3.
	if got := listScheduleMakespan([]int64{3, 3, 3, 3}, 4); got != 3 {
		t.Fatalf("makespan = %d, want 3", got)
	}
	// FIFO with the long task last: 1,1,1,9 on 2 workers → loads (1+1, 1+9).
	if got := listScheduleMakespan([]int64{1, 1, 1, 9}, 2); got != 10 {
		t.Fatalf("makespan = %d, want 10", got)
	}
	// LPT order: 9,1,1,1 → loads (9, 3) → makespan 9.
	if got := listScheduleMakespan([]int64{9, 1, 1, 1}, 2); got != 9 {
		t.Fatalf("makespan = %d, want 9", got)
	}
	if got := listScheduleMakespan(nil, 0); got != 0 {
		t.Fatalf("empty makespan = %d", got)
	}
}

func TestOracleGuidedLPTBeatsFIFO(t *testing.T) {
	batches := workload(25)

	// FIFO baseline.
	fifo := New(4, nil, false)
	fifoNs := run(fifo, batches)

	// Reference run under PYTHIA-RECORD (FIFO scheduling, instrumented).
	rec := pythia.NewRecordOracle()
	recorded := New(4, rec, false)
	recNs := run(recorded, batches)
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if recNs != fifoNs {
		t.Fatalf("recording changed the virtual makespan: %d vs %d", recNs, fifoNs)
	}

	// Predicted-LPT run.
	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lpt := New(4, oracle, true)
	lptNs := run(lpt, batches)
	st := lpt.Stats()

	if st.Predictions == 0 {
		t.Fatal("no duration predictions requested")
	}
	if st.PredictMiss > st.Predictions/5 {
		t.Fatalf("too many prediction misses: %+v", st)
	}
	if lptNs >= fifoNs {
		t.Fatalf("predicted LPT (%d) not faster than FIFO (%d)", lptNs, fifoNs)
	}
	improvement := 1 - float64(lptNs)/float64(fifoNs)
	t.Logf("FIFO %.2fms, predicted-LPT %.2fms (%.0f%% faster)",
		float64(fifoNs)/1e6, float64(lptNs)/1e6, improvement*100)
	if improvement < 0.15 {
		t.Fatalf("improvement %.0f%% too small for a long-tail workload", improvement*100)
	}
}

func TestPredictionsLearnPerKindDurations(t *testing.T) {
	// Two kinds with 10x different costs; after recording, predicted
	// durations must rank them correctly even though the scheduler never
	// sees CostNs directly.
	batches := [][]Task{}
	for i := 0; i < 20; i++ {
		batches = append(batches, []Task{
			{Kind: "fast", CostNs: 50_000},
			{Kind: "slow", CostNs: 500_000},
		})
	}
	rec := pythia.NewRecordOracle()
	run(New(2, rec, false), batches)
	ts, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	th := oracle.Thread(0)
	// Walk one batch: after submitting fast's start event, the predicted
	// time to its end event must be ~50µs.
	th.Submit(oracle.Lookup("task_start.fast"))
	pred, ok := th.PredictDurationUntil(oracle.Lookup("task_end.fast"), 4)
	if !ok {
		t.Fatal("no prediction for fast task")
	}
	if pred.ExpectedNs < 40_000 || pred.ExpectedNs > 60_000 {
		t.Fatalf("fast task predicted %.0fns, want ~50000", pred.ExpectedNs)
	}
	th.Submit(oracle.Lookup("task_end.fast"))
	th.Submit(oracle.Lookup("task_start.slow"))
	pred, ok = th.PredictDurationUntil(oracle.Lookup("task_end.slow"), 4)
	if !ok {
		t.Fatal("no prediction for slow task")
	}
	if pred.ExpectedNs < 400_000 || pred.ExpectedNs > 600_000 {
		t.Fatalf("slow task predicted %.0fns, want ~500000", pred.ExpectedNs)
	}
}
