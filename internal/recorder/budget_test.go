package recorder

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/events"
)

func TestMaxEventsBudget(t *testing.T) {
	r := New(WithoutTimestamps(), WithMaxEvents(50))
	for i := 0; i < 120; i++ {
		r.Record(events.ID(i % 2))
	}
	if !r.Truncated() {
		t.Fatal("recorder not truncated past the event cap")
	}
	if !strings.Contains(r.TruncationCause(), "event cap 50") {
		t.Fatalf("cause = %q", r.TruncationCause())
	}
	if r.DroppedEvents() != 70 {
		t.Fatalf("dropped = %d, want 70", r.DroppedEvents())
	}
	// EventCount reports the true stream length for overhead accounting.
	if r.EventCount() != 120 {
		t.Fatalf("EventCount = %d, want 120", r.EventCount())
	}
	th := r.Finish()
	if !th.Truncated || th.Dropped != 70 {
		t.Fatalf("trace truncated=%v dropped=%d, want true/70", th.Truncated, th.Dropped)
	}
	if th.Grammar.EventCount != 50 {
		t.Fatalf("grammar froze at %d events, want 50", th.Grammar.EventCount)
	}
}

// highEntropy feeds a seeded random stream over an alphabet of distinct
// events — the worst case for grammar growth.
func highEntropy(r *Recorder, n, alphabet int) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		r.Record(events.ID(rng.Intn(alphabet)))
	}
}

func TestRuleBudget(t *testing.T) {
	r := New(WithoutTimestamps(), WithGrammarBudget(32, 0))
	highEntropy(r, 50_000, 64)
	if !r.Truncated() {
		t.Fatal("rule budget never breached on a high-entropy stream")
	}
	if !strings.Contains(r.TruncationCause(), "rule budget 32") {
		t.Fatalf("cause = %q", r.TruncationCause())
	}
	// The freeze happens on the first event past the budget: the grammar
	// may sit at most a handful of rules above the cap, never grow with
	// the stream.
	if n := r.Grammar().RuleCount(); n > 40 {
		t.Fatalf("grammar at %d rules under a budget of 32", n)
	}
}

func TestNodeBudget(t *testing.T) {
	r := New(WithoutTimestamps(), WithGrammarBudget(0, 256))
	highEntropy(r, 50_000, 64)
	if !r.Truncated() {
		t.Fatal("node budget never breached on a high-entropy stream")
	}
	if !strings.Contains(r.TruncationCause(), "node budget 256") {
		t.Fatalf("cause = %q", r.TruncationCause())
	}
	if n := r.Grammar().NodeCount(); n > 256+16 {
		t.Fatalf("grammar at %d nodes under a budget of 256", n)
	}
}

func TestNoBudgetNoTruncation(t *testing.T) {
	r := New(WithoutTimestamps())
	highEntropy(r, 20_000, 64)
	if r.Truncated() || r.DroppedEvents() != 0 {
		t.Fatalf("unbudgeted recorder truncated (%q)", r.TruncationCause())
	}
	if th := r.Finish(); th.Truncated {
		t.Fatal("unbudgeted trace marked truncated")
	}
}

// TestTruncatedTimingFrozen checks the timing log stops growing with the
// grammar — a budget must cap both halves of the recording.
func TestTruncatedTimingFrozen(t *testing.T) {
	var now int64
	r := New(WithClock(func() int64 { now += 10; return now }), WithMaxEvents(20))
	for i := 0; i < 200; i++ {
		r.Record(events.ID(i % 2))
	}
	th := r.Finish()
	if th.Timing == nil {
		t.Fatal("timing model missing")
	}
	var samples int64
	for _, s := range th.Timing.ByEvent {
		samples += s.Count
	}
	if samples > 20 {
		t.Fatalf("timing kept accumulating after the freeze: %d samples", samples)
	}
}
