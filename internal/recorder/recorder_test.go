package recorder

import (
	"reflect"
	"testing"

	"repro/internal/events"
	"repro/internal/grammar"
	"repro/internal/model"
	"repro/internal/progress"
)

func TestRecordAndFinish(t *testing.T) {
	r := New(WithoutTimestamps())
	seq := []events.ID{0, 1, 1, 2, 1, 2, 0, 1}
	for _, e := range seq {
		r.Record(e)
	}
	if r.EventCount() != int64(len(seq)) {
		t.Fatalf("EventCount = %d, want %d", r.EventCount(), len(seq))
	}
	th := r.Finish()
	if th.Timing != nil {
		t.Fatal("timing model present despite WithoutTimestamps")
	}
	got := th.Grammar.Unfold()
	want := make([]int32, len(seq))
	for i, e := range seq {
		want[i] = int32(e)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("frozen grammar unfolds to %v, want %v", got, want)
	}
}

func TestVirtualClockTiming(t *testing.T) {
	// Event 0 happens, then 100ns later event 1, then 900ns later event 0,
	// repeatedly. The timing model must attribute ~100ns to event 1 and
	// ~900ns to the non-initial occurrences of event 0.
	var now int64
	r := New(WithClock(func() int64 { return now }))
	for i := 0; i < 50; i++ {
		r.RecordAt(0, now)
		now += 100
		r.RecordAt(1, now)
		now += 900
	}
	th := r.Finish()
	if th.Timing == nil {
		t.Fatal("no timing model recorded")
	}
	s1 := th.Timing.ByEvent[1]
	if s1.Count == 0 {
		t.Fatal("no stats for event 1")
	}
	if m := s1.Mean(); m < 99 || m > 101 {
		t.Fatalf("mean delta before event 1 = %v, want ~100", m)
	}
	s0 := th.Timing.ByEvent[0]
	// First occurrence has delta 0; the remaining 49 have 900.
	if m := s0.Mean(); m < 800 || m > 900 {
		t.Fatalf("mean delta before event 0 = %v, want ~882", m)
	}
}

func TestTimingPerContextGranularity(t *testing.T) {
	// Build the paper's Fig 6 situation: event b occurs in two contexts with
	// different preceding delays; the per-ref stats must keep them apart
	// while the per-event fallback averages them.
	var now int64
	r := New(WithClock(func() int64 { return now }))
	for i := 0; i < 40; i++ {
		// Context 1: a then b after 10ns, then c.
		r.RecordAt(0, now)
		now += 10
		r.RecordAt(1, now)
		now += 5
		r.RecordAt(2, now)
		now += 5
		// Context 2: a then b after 1000ns, then d.
		r.RecordAt(0, now)
		now += 1000
		r.RecordAt(1, now)
		now += 5
		r.RecordAt(3, now)
		now += 5
	}
	th := r.Finish()
	if th.Timing == nil {
		t.Fatal("no timing")
	}
	// The per-event mean mixes 10 and 1000.
	mix := th.Timing.ByEvent[1].Mean()
	if mix < 400 || mix > 600 {
		t.Fatalf("per-event mean = %v, want ~505", mix)
	}
	// Walking the reference trace, the context-aware lookup must separate
	// the two b contexts: ~10ns before the b followed by c, ~1000ns before
	// the b followed by d (paper Fig 6).
	var lo, hi bool
	pos, ok := progress.Start(th.Grammar)
	var refs []grammar.UserRef
	for ok {
		if pos.Terminal(th.Grammar) == 1 {
			refs = pos.AppendRefs(refs[:0])
			m := th.Timing.MeanForPath(refs, 1)
			if m < 50 {
				lo = true
			}
			if m > 500 {
				hi = true
			}
		}
		brs := progress.Successors(th.Grammar, pos, 1)
		if len(brs) == 0 {
			break
		}
		pos = brs[0].Pos
	}
	if !lo || !hi {
		t.Fatalf("per-context stats did not separate the two contexts (lo=%v hi=%v)", lo, hi)
	}
}

func TestDefaultClockMonotonic(t *testing.T) {
	r := New()
	for i := 0; i < 100; i++ {
		r.Record(events.ID(i % 3))
	}
	th := r.Finish()
	if th.Timing == nil {
		t.Fatal("default recorder should carry timing")
	}
	for _, s := range th.Timing.BySuffix {
		if s.Min < 0 {
			t.Fatalf("negative duration recorded: %+v", s)
		}
	}
}

func TestEmptyRecorderFinish(t *testing.T) {
	r := New()
	th := r.Finish()
	if th.Grammar == nil {
		t.Fatal("nil grammar from empty recorder")
	}
	if th.Grammar.EventCount != 0 {
		t.Fatalf("EventCount = %d, want 0", th.Grammar.EventCount)
	}
}

func TestStatMergeAndBounds(t *testing.T) {
	var a, b model.Stat
	a.Add(5)
	a.Add(15)
	b.Add(100)
	a.Merge(b)
	if a.Count != 3 || a.Min != 5 || a.Max != 100 {
		t.Fatalf("merged stat = %+v", a)
	}
	if m := a.Mean(); m != 40 {
		t.Fatalf("mean = %v, want 40", m)
	}
	var empty model.Stat
	a.Merge(empty)
	if a.Count != 3 {
		t.Fatalf("merging empty changed count: %+v", a)
	}
	empty.Merge(a)
	if empty.Count != 3 {
		t.Fatalf("merge into empty: %+v", empty)
	}
}

func TestRuleCountGrowsWithIrregularity(t *testing.T) {
	reg := New(WithoutTimestamps())
	for i := 0; i < 1000; i++ {
		reg.Record(events.ID(i % 3))
	}
	regular := reg.RuleCount()

	irr := New(WithoutTimestamps())
	state := uint32(12345)
	for i := 0; i < 1000; i++ {
		state = state*1664525 + 1013904223
		irr.Record(events.ID(state % 16))
	}
	irregular := irr.RuleCount()
	if irregular <= regular {
		t.Fatalf("irregular trace rules (%d) not larger than regular (%d)", irregular, regular)
	}
}

func TestSnapshotMidRun(t *testing.T) {
	var now int64
	r := New(WithClock(func() int64 { return now }))
	for i := 0; i < 30; i++ {
		r.RecordAt(events.ID(i%2), now)
		now += 100
	}
	snap := r.Snapshot()
	if snap.Grammar.EventCount != 30 {
		t.Fatalf("snapshot has %d events, want 30", snap.Grammar.EventCount)
	}
	if snap.Timing == nil {
		t.Fatal("snapshot lost timing")
	}
	// Recording continues unaffected.
	for i := 0; i < 30; i++ {
		r.RecordAt(events.ID(i%2), now)
		now += 100
	}
	final := r.Finish()
	if final.Grammar.EventCount != 60 {
		t.Fatalf("final trace has %d events, want 60", final.Grammar.EventCount)
	}
	// The snapshot is unaffected by later events.
	if snap.Grammar.EventCount != 30 {
		t.Fatal("snapshot mutated by later recording")
	}
}
