// Package recorder implements PYTHIA-RECORD (paper section II-A): during the
// reference execution of a program, the runtime system notifies the recorder
// of events; the recorder reduces each thread's event stream into a grammar
// on the fly and, optionally, logs event timestamps. At the end of the run,
// Finish freezes the grammar and replays the timestamp log through the
// deterministic progress tracker to build the per-context timing model of
// section II-C.
package recorder

import (
	"fmt"
	"time"

	"repro/internal/events"
	"repro/internal/grammar"
	"repro/internal/model"
	"repro/internal/progress"
)

// Clock returns a monotonically non-decreasing time in nanoseconds. Real
// runs use a wall clock; the discrete-event OpenMP substrate injects its
// virtual clock so that recorded durations are virtual too.
type Clock func() int64

// Option configures a Recorder.
type Option func(*Recorder)

// WithClock enables timestamp recording with the given clock.
func WithClock(c Clock) Option {
	return func(r *Recorder) { r.clock = c }
}

// WithoutTimestamps disables timestamp recording; the resulting trace
// carries no timing model and duration predictions return zero.
func WithoutTimestamps() Option {
	return func(r *Recorder) { r.clock = nil; r.noTime = true }
}

// WithMaxEvents caps the number of events folded into the grammar. Beyond
// the cap the recording degrades gracefully instead of growing without
// bound: the grammar is frozen, further events are counted but dropped, and
// the resulting trace is marked truncated. Zero or negative means
// unlimited.
func WithMaxEvents(n int64) Option {
	return func(r *Recorder) { r.maxEvents = n }
}

// WithGrammarBudget caps the grammar's memory footprint: at most maxRules
// live rules and maxNodes live body nodes. An adversarial (high-entropy)
// event stream defeats Sequitur's compression and would otherwise grow the
// grammar linearly with the stream; on breach the recording degrades
// exactly like WithMaxEvents. Zero or negative disables either cap.
func WithGrammarBudget(maxRules, maxNodes int) Option {
	return func(r *Recorder) { r.maxRules = maxRules; r.maxNodes = maxNodes }
}

// WithCheckpointSink hands a Checkpoint of the recording to sink every
// `every` events (counting budget-dropped events, so truncated recordings
// keep reporting their growing drop count). The checkpoint is taken on the
// recording thread — the only goroutine allowed to touch the live grammar —
// but is cheap: a Freeze of the compressed grammar plus a view of the
// timestamp log. The expensive part (rebuilding the timing model) is
// deferred to Checkpoint.Materialize, which the sink's consumer runs
// wherever it likes. every <= 0 disables checkpointing.
func WithCheckpointSink(every int64, sink func(Checkpoint)) Option {
	return func(r *Recorder) {
		if every > 0 && sink != nil {
			r.ckptEvery = every
			r.ckptSink = sink
		}
	}
}

// Recorder accumulates one thread's events. It is not safe for concurrent
// use; Pythia keeps one recorder per thread (paper section III-C1).
type Recorder struct {
	g      *grammar.Grammar
	clock  Clock
	noTime bool
	deltas []int64
	last   int64
	seen   bool

	// Resource budgets (zero = unlimited) and the degradation they trigger:
	// once truncated, the grammar and the timing log are frozen and events
	// are merely counted.
	maxEvents  int64
	maxRules   int
	maxNodes   int
	truncated  bool
	truncCause string
	dropped    int64

	// Checkpoint cadence (zero = disabled): every ckptEvery events the
	// recording thread hands a Checkpoint to ckptSink. ckptLast is the
	// event total (recorded + dropped) at the previous checkpoint.
	ckptEvery int64
	ckptLast  int64
	ckptSink  func(Checkpoint)
}

// New returns a recorder. By default timestamps are recorded with a
// monotonic wall clock.
func New(opts ...Option) *Recorder {
	r := &Recorder{g: grammar.New()}
	for _, o := range opts {
		o(r)
	}
	if r.clock == nil && !r.noTime {
		base := time.Now()
		r.clock = func() int64 { return int64(time.Since(base)) }
	}
	return r
}

// Record notifies the recorder that event id was raised now.
func (r *Recorder) Record(id events.ID) {
	if r.clock != nil {
		r.RecordAt(id, r.clock())
		return
	}
	if r.truncated {
		r.dropped++
		r.maybeCheckpoint()
		return
	}
	r.g.Append(int32(id))
	r.checkBudget()
	r.maybeCheckpoint()
}

// RecordAt notifies the recorder that event id was raised at the explicit
// timestamp now (nanoseconds on the recorder's clock). Timestamps must be
// non-decreasing.
func (r *Recorder) RecordAt(id events.ID, now int64) {
	if r.truncated {
		r.dropped++
		r.last = now
		r.maybeCheckpoint()
		return
	}
	delta := int64(0)
	if r.seen {
		delta = now - r.last
		if delta < 0 {
			delta = 0
		}
	}
	r.last = now
	r.seen = true
	if !r.noTime {
		r.deltas = append(r.deltas, delta)
	}
	r.g.Append(int32(id))
	r.checkBudget()
	r.maybeCheckpoint()
}

// checkBudget freezes the recording when a resource budget is breached.
// Comparisons against the grammar's O(1) counters — no scan.
// pythia:hotpath — three compares per recorded event.
func (r *Recorder) checkBudget() {
	switch {
	case r.maxEvents > 0 && r.g.EventCount() >= r.maxEvents:
		r.truncateEvents()
	case r.maxRules > 0 && r.g.RuleCount() > r.maxRules:
		r.truncateRules()
	case r.maxNodes > 0 && r.g.NodeCount() > r.maxNodes:
		r.truncateNodes()
	}
}

// The truncate* transitions run at most once per recording, off the
// annotated hot path — formatting the cause here is free.

func (r *Recorder) truncateEvents() {
	r.truncate(fmt.Sprintf("event cap %d reached", r.maxEvents))
}

func (r *Recorder) truncateRules() {
	r.truncate(fmt.Sprintf("rule budget %d exceeded (%d live rules)", r.maxRules, r.g.RuleCount()))
}

func (r *Recorder) truncateNodes() {
	r.truncate(fmt.Sprintf("node budget %d exceeded (%d live nodes)", r.maxNodes, r.g.NodeCount()))
}

// truncate freezes the grammar and timing log; subsequent events are only
// counted. The trace produced by Finish will carry the truncation mark.
func (r *Recorder) truncate(cause string) {
	r.truncated = true
	r.truncCause = cause
}

// Truncated reports whether a resource budget froze this recording.
func (r *Recorder) Truncated() bool { return r.truncated }

// TruncationCause describes the breached budget ("" when not truncated).
func (r *Recorder) TruncationCause() string { return r.truncCause }

// DroppedEvents returns the number of events seen after the budget froze
// the grammar (0 when not truncated).
func (r *Recorder) DroppedEvents() int64 { return r.dropped }

// EventCount returns the number of events seen so far, including events
// dropped after a budget breach (record-overhead accounting wants the
// true stream length, not the truncated one).
func (r *Recorder) EventCount() int64 { return r.g.EventCount() + r.dropped }

// RuleCount returns the current number of grammar rules, the paper's measure
// of grammar size (Table I).
func (r *Recorder) RuleCount() int { return r.g.RuleCount() }

// Grammar exposes the live grammar for inspection (dumping, invariant
// checks in tests).
func (r *Recorder) Grammar() *grammar.Grammar { return r.g }

// Checkpoint is a consistent copy of a recording's state, cheap to take on
// the recording thread and safe to Materialize on any other goroutine: the
// grammar is an immutable Freeze and the delta log is a capacity-capped
// prefix view of an append-only slice the owner only ever extends.
type Checkpoint struct {
	// Grammar is the frozen reduction of the events recorded so far.
	Grammar *grammar.Frozen
	// Truncated and Dropped mirror the budget state at checkpoint time.
	Truncated bool
	Dropped   int64

	deltas []int64
}

// Events returns the number of events the checkpoint covers, including
// budget-dropped events.
func (c Checkpoint) Events() int64 { return c.Grammar.EventCount + c.Dropped }

// Materialize rebuilds the per-thread trace artifact — including the timing
// model replay, the expensive part of finishing a recording — from the
// checkpointed state. Unlike taking the checkpoint, this may run on any
// goroutine.
func (c Checkpoint) Materialize() *model.ThreadTrace {
	return buildThreadTrace(c.Grammar, c.deltas, c.Truncated, c.Dropped)
}

// Checkpoint captures the current state. It must be called from the
// recording thread (like every other Recorder method).
func (r *Recorder) Checkpoint() Checkpoint {
	return Checkpoint{
		Grammar:   r.g.Freeze(),
		Truncated: r.truncated,
		Dropped:   r.dropped,
		// The three-index form pins the capacity: a later append by the
		// recording thread reallocates or writes past this view, never
		// into it.
		deltas: r.deltas[:len(r.deltas):len(r.deltas)],
	}
}

// maybeCheckpoint hands a checkpoint to the sink when the cadence is due.
// pythia:hotpath — one compare per recorded event when enabled.
func (r *Recorder) maybeCheckpoint() {
	if r.ckptEvery <= 0 {
		return
	}
	if total := r.g.EventCount() + r.dropped; total-r.ckptLast >= r.ckptEvery {
		r.ckptLast = total
		r.ckptSink(r.Checkpoint())
	}
}

// Snapshot freezes the structure recorded *so far* without ending the
// recording — the crash-tolerance hook: a long run can checkpoint its trace
// periodically and keep recording. Snapshots carry the timing model built
// from the deltas seen so far.
func (r *Recorder) Snapshot() *model.ThreadTrace {
	return r.finishInternal()
}

// Finish freezes the recorded structure into a per-thread trace artifact.
// When timestamps were recorded, the event sequence is replayed through the
// grammar — exactly as the paper describes — to associate each grammar
// context with the mean elapsed time since the previous event.
func (r *Recorder) Finish() *model.ThreadTrace {
	return r.finishInternal()
}

func (r *Recorder) finishInternal() *model.ThreadTrace {
	return buildThreadTrace(r.g.Freeze(), r.deltas, r.truncated, r.dropped)
}

// buildThreadTrace assembles the trace artifact from frozen state: when
// timestamps were recorded, the event sequence is replayed through the
// grammar to associate each grammar context with the mean elapsed time
// since the previous event. Pure function of its arguments — both Finish
// and Checkpoint.Materialize (possibly on another goroutine) run it.
func buildThreadTrace(frozen *grammar.Frozen, deltas []int64, truncated bool, dropped int64) *model.ThreadTrace {
	th := &model.ThreadTrace{
		Grammar:   frozen,
		Truncated: truncated,
		Dropped:   dropped,
	}
	if len(deltas) == 0 {
		return th
	}
	timing := model.NewTiming()
	pos, ok := progress.Start(frozen)
	var refs []grammar.UserRef
	for i := 0; ok && i < len(deltas); i++ {
		refs = pos.AppendRefs(refs[:0])
		timing.AddPath(refs, pos.Terminal(frozen), deltas[i])
		brs := progress.Successors(frozen, pos, 1)
		if len(brs) == 0 {
			break
		}
		// Root-anchored tracking over the grammar's own expansion is
		// deterministic: exactly one successor until the trace ends.
		pos = brs[0].Pos
	}
	th.Timing = timing
	return th
}
