package server

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pythia"
	"repro/pythia/client"
)

// recordTrace records one app at a class/seed and saves it as a tenant
// trace file in dir.
func recordTrace(t *testing.T, dir, tenant string, app apps.App, class apps.Class, seed int64) {
	t.Helper()
	oracle := pythia.NewRecordOracle()
	run, err := harness.RunMPIAppWithOracle(oracle, app, class, seed)
	if err != nil {
		t.Fatalf("recording %s: %v", app.Name, err)
	}
	if err := pythia.SaveTraceSet(filepath.Join(dir, tenant+".pythia"), run.Trace); err != nil {
		t.Fatalf("saving %s: %v", tenant, err)
	}
}

// synthTrace records a single-thread repeating pattern and saves it as a
// tenant trace file; it returns the pattern's descriptor names.
func synthTrace(t testing.TB, dir, tenant string, reps int) []string {
	t.Helper()
	oracle := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	names := []string{"phase:a", "phase:b", "phase:c", "phase:d"}
	th := oracle.Thread(0)
	for i := 0; i < reps; i++ {
		for _, n := range names {
			th.Submit(oracle.Intern(n))
		}
	}
	ts, err := oracle.Finish()
	if err != nil {
		t.Fatalf("finishing synthetic trace: %v", err)
	}
	if err := pythia.SaveTraceSet(filepath.Join(dir, tenant+".pythia"), ts); err != nil {
		t.Fatalf("saving synthetic trace: %v", err)
	}
	return names
}

// startServer serves cfg on a fresh localhost port and returns the server
// and its address. Shutdown runs at test cleanup.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := New(cfg)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// samePrediction is bit-level equality, including the float fields.
func samePrediction(a, b pythia.Prediction) bool {
	return a.EventID == b.EventID && a.Distance == b.Distance &&
		math.Float64bits(a.Probability) == math.Float64bits(b.Probability) &&
		math.Float64bits(a.ExpectedNs) == math.Float64bits(b.ExpectedNs)
}

// oracleAPI is the method set shared by the in-process and remote oracles;
// the differential test drives both through it so the call sequences are
// identical by construction.
type oracleAPI interface {
	Intern(name string, args ...int64) pythia.ID
	EventName(id pythia.ID) string
}

// threadAPI likewise for the per-thread handles.
type threadAPI interface {
	Submit(id pythia.ID)
	StartAtBeginning()
	PredictAt(distance int) (pythia.Prediction, bool)
	PredictSequence(n int) []pythia.Prediction
	PredictDurationUntil(id pythia.ID, maxDistance int) (pythia.Prediction, bool)
}

// localThread adapts *pythia.Thread (methods with value receivers differ)
// to threadAPI.
type localThread struct{ th *pythia.Thread }

func (l localThread) Submit(id pythia.ID)                       { l.th.Submit(id) }
func (l localThread) StartAtBeginning()                         { l.th.StartAtBeginning() }
func (l localThread) PredictAt(d int) (pythia.Prediction, bool) { return l.th.PredictAt(d) }
func (l localThread) PredictSequence(n int) []pythia.Prediction { return l.th.PredictSequence(n) }
func (l localThread) PredictDurationUntil(id pythia.ID, maxD int) (pythia.Prediction, bool) {
	return l.th.PredictDurationUntil(id, maxD)
}

// replayResult is every prediction gathered while replaying one stream.
type replayResult struct {
	seqs  [][]pythia.Prediction
	ats   []pythia.Prediction
	atOKs []bool
	durs  []pythia.Prediction
	durOK []bool
}

// replayStream submits one thread's stream, querying at a deterministic
// sample of points.
func replayStream(o oracleAPI, th threadAPI, stream []string, maxDist int) replayResult {
	var res replayResult
	th.StartAtBeginning()
	stride := len(stream) / 24
	if stride == 0 {
		stride = 1
	}
	durTarget := pythia.ID(-1)
	for i, name := range stream {
		id := o.Intern(name)
		if durTarget < 0 && harness.IsBlockingEvent(name) {
			durTarget = id
		}
		th.Submit(id)
		if i%stride != 0 {
			continue
		}
		res.seqs = append(res.seqs, th.PredictSequence(maxDist))
		for _, d := range []int{1, 8, maxDist} {
			pr, ok := th.PredictAt(d)
			res.ats = append(res.ats, pr)
			res.atOKs = append(res.atOKs, ok)
		}
		if durTarget >= 0 {
			pr, ok := th.PredictDurationUntil(durTarget, maxDist)
			res.durs = append(res.durs, pr)
			res.durOK = append(res.durOK, ok)
		}
	}
	return res
}

// diffResults fails the test on the first non-bit-identical prediction.
func diffResults(t *testing.T, tid int32, local, remote replayResult) {
	t.Helper()
	if len(local.seqs) != len(remote.seqs) {
		t.Fatalf("tid %d: %d local vs %d remote sequence queries", tid, len(local.seqs), len(remote.seqs))
	}
	for q := range local.seqs {
		ls, rs := local.seqs[q], remote.seqs[q]
		if len(ls) != len(rs) {
			t.Fatalf("tid %d query %d: PredictSequence lengths %d vs %d", tid, q, len(ls), len(rs))
		}
		for i := range ls {
			if !samePrediction(ls[i], rs[i]) {
				t.Fatalf("tid %d query %d step %d: local %+v remote %+v", tid, q, i, ls[i], rs[i])
			}
		}
	}
	for i := range local.ats {
		if local.atOKs[i] != remote.atOKs[i] || !samePrediction(local.ats[i], remote.ats[i]) {
			t.Fatalf("tid %d PredictAt query %d: local %+v/%v remote %+v/%v",
				tid, i, local.ats[i], local.atOKs[i], remote.ats[i], remote.atOKs[i])
		}
	}
	for i := range local.durs {
		if local.durOK[i] != remote.durOK[i] || !samePrediction(local.durs[i], remote.durs[i]) {
			t.Fatalf("tid %d PredictDurationUntil query %d: local %+v/%v remote %+v/%v",
				tid, i, local.durs[i], local.durOK[i], remote.durs[i], remote.durOK[i])
		}
	}
}

// startServerTransports serves one Server on both a TCP and a unix
// listener, returning the TCP address and the unix address (scheme-
// prefixed, ready for client.Dial).
func startServerTransports(t *testing.T, cfg Config) (*Server, string, string) {
	t.Helper()
	tln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("tcp listen: %v", err)
	}
	// A short private dir keeps the socket path inside the sun_path limit
	// (t.TempDir names grow with the test name).
	sockDir, err := os.MkdirTemp("", "pythia-uds")
	if err != nil {
		t.Fatalf("socket dir: %v", err)
	}
	unixAddr := "unix://" + filepath.Join(sockDir, "d.sock")
	uln, err := transport.Listen(unixAddr)
	if err != nil {
		t.Fatalf("unix listen: %v", err)
	}
	srv := New(cfg)
	serveErr := make(chan error, 2)
	go func() { serveErr <- srv.Serve(tln) }()
	go func() { serveErr <- srv.Serve(uln) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		for i := 0; i < 2; i++ {
			if err := <-serveErr; err != nil {
				t.Errorf("serve: %v", err)
			}
		}
		if err := os.RemoveAll(sockDir); err != nil {
			t.Errorf("removing socket dir: %v", err)
		}
	})
	return srv, tln.Addr().String(), unixAddr
}

// TestRemoteBitIdenticalAllApps is the differential acceptance test: every
// app kernel replayed through pythia/client against a local pythiad — over
// every transport tier — must produce predictions bit-identical to the
// in-process oracle fed the same stream.
func TestRemoteBitIdenticalAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("records and replays all 13 applications")
	}
	dir := t.TempDir()
	for _, app := range apps.All() {
		recordTrace(t, dir, app.Name, app, apps.Small, 42)
	}
	_, tcpAddr, unixAddr := startServerTransports(t, Config{TraceDir: dir})
	transports := []struct {
		name string
		addr string
		cfg  client.Config
	}{
		{"tcp", tcpAddr, client.Config{}},
		{"unix", unixAddr, client.Config{}},
		{"shm", unixAddr, client.Config{SharedMem: true}},
	}

	// A two-daemon fleet over the same trace dir, no replicas: every
	// tenant has exactly one owner, so a forced epoch bump flips roughly
	// half the tenants and the fleet client must reroute through the
	// non-fatal CodeWrongShard refusal — with predictions bit-identical
	// before and after.
	fleetA, fleetAddrA := startServer(t, Config{TraceDir: dir})
	fleetB, fleetAddrB := startServer(t, Config{TraceDir: dir})
	fleetDaemons := []string{fleetAddrA, fleetAddrB}
	fleetEpoch := uint64(1)
	configureFleet := func(epoch uint64) {
		fleetA.ConfigureCluster(fleetDaemons[0], fleetDaemons, epoch, 0)
		fleetB.ConfigureCluster(fleetDaemons[1], fleetDaemons, epoch, 0)
	}
	configureFleet(fleetEpoch)
	fleet, err := client.DialFleet(fleetAddrA+","+fleetAddrB, client.Config{})
	if err != nil {
		t.Fatalf("dialing fleet: %v", err)
	}
	t.Cleanup(func() {
		if err := fleet.Close(); err != nil {
			t.Errorf("closing fleet: %v", err)
		}
	})

	const maxDist = 32
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			// The replayed execution uses a different seed than the
			// recording, so data-dependent apps diverge and the oracle
			// must re-anchor — on both sides identically.
			streams := harness.CaptureStreams(app, apps.Small, 43)
			ref, err := pythia.LoadTraceSet(filepath.Join(dir, app.Name+".pythia"))
			if err != nil {
				t.Fatalf("loading trace: %v", err)
			}
			localOracle, err := pythia.NewPredictOracle(ref, pythia.Config{})
			if err != nil {
				t.Fatalf("local oracle: %v", err)
			}
			tids := make([]int32, 0, len(streams))
			for tid := range streams {
				tids = append(tids, tid)
			}
			sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
			// One local replay per thread, compared against every transport.
			locals := make(map[int32]replayResult, len(tids))
			for _, tid := range tids {
				locals[tid] = replayStream(localOracle, localThread{localOracle.Thread(tid)}, streams[tid], maxDist)
			}

			for _, tr := range transports {
				tr := tr
				t.Run(tr.name, func(t *testing.T) {
					remoteOracle, err := client.Connect(tr.addr, app.Name, tr.cfg)
					if err != nil {
						t.Fatalf("remote oracle: %v", err)
					}
					defer func() {
						if err := remoteOracle.Close(); err != nil {
							t.Errorf("closing remote oracle: %v", err)
						}
					}()
					if got := remoteOracle.Transport(); got != tr.name {
						t.Fatalf("negotiated transport %q, want %q", got, tr.name)
					}
					for _, tid := range tids {
						remote := replayStream(remoteOracle, remoteOracle.Thread(tid), streams[tid], maxDist)
						diffResults(t, tid, locals[tid], remote)
					}
				})
			}

			// Same replay routed by shard map through the two-daemon
			// fleet, then once more after a forced epoch bump (which
			// reassigns tenants, so a stale cached map must be corrected
			// via CodeWrongShard + refresh).
			for _, leg := range []string{"fleet", "fleet-epoch-bump"} {
				leg := leg
				t.Run(leg, func(t *testing.T) {
					if leg == "fleet-epoch-bump" {
						fleetEpoch++
						configureFleet(fleetEpoch)
					}
					remoteOracle, err := fleet.Oracle(app.Name)
					if err != nil {
						t.Fatalf("fleet oracle: %v", err)
					}
					defer func() {
						if err := remoteOracle.Close(); err != nil {
							t.Errorf("closing fleet oracle: %v", err)
						}
					}()
					for _, tid := range tids {
						remote := replayStream(remoteOracle, remoteOracle.Thread(tid), streams[tid], maxDist)
						diffResults(t, tid, locals[tid], remote)
					}
				})
			}
		})
	}
}

// rawConn is a wire-level test client for asserting exact protocol frames.
type rawConn struct {
	t   *testing.T
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := &rawConn{t: t, nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	t.Cleanup(func() {
		if err := nc.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("closing raw conn: %v", err)
		}
	})
	c.send(wire.THello, wire.AppendHello(nil, 0))
	typ, _ := c.recv()
	if typ != wire.THelloOK {
		t.Fatalf("handshake: got %s", typ)
	}
	return c
}

func (c *rawConn) send(t wire.Type, payload []byte) {
	c.t.Helper()
	if err := wire.WriteFrame(c.bw, t, payload); err != nil {
		c.t.Fatalf("write %s: %v", t, err)
	}
	if err := c.bw.Flush(); err != nil {
		c.t.Fatalf("flush %s: %v", t, err)
	}
}

func (c *rawConn) recv() (wire.Type, []byte) {
	c.t.Helper()
	if err := c.nc.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		c.t.Fatalf("deadline: %v", err)
	}
	typ, payload, err := wire.ReadFrame(c.br, &c.buf)
	if err != nil {
		c.t.Fatalf("read frame: %v", err)
	}
	return typ, payload
}

// expectError asserts the next frame is an Error with the given code.
func (c *rawConn) expectError(code wire.Code) {
	c.t.Helper()
	typ, payload := c.recv()
	if typ != wire.TError {
		c.t.Fatalf("expected Error frame, got %s", typ)
	}
	got, msg, err := wire.ParseError(payload)
	if err != nil {
		c.t.Fatalf("parsing error frame: %v", err)
	}
	if got != code {
		c.t.Fatalf("error code = %s (%s), want %s", got, msg, code)
	}
}

// openSession opens a session and returns its id.
func (c *rawConn) openSession(tenant string, tid int32, flags uint8) uint32 {
	c.t.Helper()
	c.send(wire.TOpenSession, wire.AppendOpenSession(nil, wire.OpenSession{TID: tid, Flags: flags, Tenant: tenant}))
	typ, payload := c.recv()
	if typ != wire.TSessionOpened {
		c.t.Fatalf("expected SessionOpened, got %s", typ)
	}
	so, err := wire.ParseSessionOpened(payload)
	if err != nil {
		c.t.Fatalf("parsing SessionOpened: %v", err)
	}
	return so.Session
}

func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "synth", 256)
	srv, addr := startServer(t, Config{TraceDir: dir, DrainTimeout: 2 * time.Second})

	c := dialRaw(t, addr)
	sid := c.openSession("synth", 0, wire.FlagStartAtBeginning)
	reg := regFor(t, c, "synth")
	for i := 0; i < 8; i++ {
		c.send(wire.TSubmit, wire.AppendSubmit(nil, sid, int32(reg[names[i%len(names)]])))
	}

	shutdownDone := make(chan error, 1)
	start := time.Now()
	go func() { shutdownDone <- srv.Shutdown() }()

	// Wait for the drain flag to take effect: new sessions must be refused
	// with a protocol Error frame, not a stall.
	deadline := time.Now().Add(3 * time.Second)
	for {
		c.send(wire.TOpenSession, wire.AppendOpenSession(nil, wire.OpenSession{TID: 1, Tenant: "synth"}))
		typ, payload := c.recv()
		if typ == wire.TError {
			code, _, err := wire.ParseError(payload)
			if err != nil {
				t.Fatalf("parsing refusal: %v", err)
			}
			if code != wire.CodeDraining {
				t.Fatalf("refusal code = %s, want draining", code)
			}
			break
		}
		if typ != wire.TSessionOpened {
			t.Fatalf("unexpected %s frame", typ)
		}
		// Not draining yet: close the session we just opened and retry.
		so, err := wire.ParseSessionOpened(payload)
		if err != nil {
			t.Fatalf("parsing SessionOpened: %v", err)
		}
		c.send(wire.TCloseSession, wire.AppendCloseSession(nil, so.Session))
		if typ, _ := c.recv(); typ != wire.TSessionClosed {
			t.Fatalf("expected SessionClosed, got %s", typ)
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started refusing sessions")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// An outstanding request on the existing session is still answered.
	c.send(wire.TPredictAt, wire.AppendPredictAt(nil, sid, 1))
	typ, payload := c.recv()
	if typ != wire.TPrediction {
		t.Fatalf("during drain: expected Prediction, got %s", typ)
	}
	pr, ok, err := wire.ParsePrediction(payload)
	if err != nil || !ok {
		t.Fatalf("during drain: prediction ok=%v err=%v", ok, err)
	}
	if got := reg[names[8%len(names)]]; pr.EventID != int32(got) {
		t.Fatalf("during drain: predicted event %d, want %d", pr.EventID, got)
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if took := time.Since(start); took > 4*time.Second {
		t.Fatalf("drain took %v, want within the drain bound", took)
	}
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("%d sessions still open after drain", n)
	}
}

// regFor fetches a tenant's event table over a meta session and returns a
// name → id map.
func regFor(t *testing.T, c *rawConn, tenant string) map[string]pythia.ID {
	t.Helper()
	c.send(wire.TOpenSession, wire.AppendOpenSession(nil, wire.OpenSession{TID: -1, Flags: wire.FlagWantEvents, Tenant: tenant}))
	typ, payload := c.recv()
	if typ != wire.TSessionOpened {
		t.Fatalf("expected SessionOpened, got %s", typ)
	}
	so, err := wire.ParseSessionOpened(payload)
	if err != nil {
		t.Fatalf("parsing SessionOpened: %v", err)
	}
	reg := make(map[string]pythia.ID, len(so.Events))
	for i, name := range so.Events {
		reg[name] = pythia.ID(i)
	}
	return reg
}

func TestOverloadRefusesNewSessionsNeverStallsExisting(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "synth", 256)
	_, addr := startServer(t, Config{TraceDir: dir, MaxSessions: 2})

	c := dialRaw(t, addr)
	reg := regFor(t, c, "synth")                                // session 1 of 2
	sid := c.openSession("synth", 0, wire.FlagStartAtBeginning) // session 2 of 2

	// Over budget: refusal is an Error frame on a still-usable connection.
	c.send(wire.TOpenSession, wire.AppendOpenSession(nil, wire.OpenSession{TID: 1, Tenant: "synth"}))
	c.expectError(wire.CodeSessionLimit)

	// The existing session keeps answering after the refusal.
	c.send(wire.TSubmit, wire.AppendSubmit(nil, sid, int32(reg[names[0]])))
	c.send(wire.TPredictAt, wire.AppendPredictAt(nil, sid, 1))
	typ, payload := c.recv()
	if typ != wire.TPrediction {
		t.Fatalf("after refusal: expected Prediction, got %s", typ)
	}
	if _, ok, err := wire.ParsePrediction(payload); err != nil || !ok {
		t.Fatalf("after refusal: prediction ok=%v err=%v", ok, err)
	}

	// Closing a session frees budget for a new one.
	c.send(wire.TCloseSession, wire.AppendCloseSession(nil, sid))
	if typ, _ := c.recv(); typ != wire.TSessionClosed {
		t.Fatalf("expected SessionClosed, got %s", typ)
	}
	c.openSession("synth", 1, 0)
}

func TestConnLimitRefusesAtAccept(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 64)
	_, addr := startServer(t, Config{TraceDir: dir, MaxConns: 1})

	first, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	defer func() {
		if err := first.Close(); err != nil {
			t.Errorf("closing first client: %v", err)
		}
	}()
	if _, err := first.Oracle("synth"); err != nil {
		t.Fatalf("first oracle: %v", err)
	}

	// The second connection is refused with CodeConnLimit before the
	// handshake, and the first keeps working.
	_, err = client.Dial(addr, client.Config{DialTimeout: 2 * time.Second})
	var re *client.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeConnLimit {
		t.Fatalf("second dial err = %v, want RemoteError CodeConnLimit", err)
	}
	if err := first.Err(); err != nil {
		t.Fatalf("first connection broke: %v", err)
	}
}

func TestUnknownTenant(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 64)
	_, addr := startServer(t, Config{TraceDir: dir})

	c, err := client.Dial(addr, client.Config{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	for _, tenant := range []string{"nope", "../synth", "a/b", ".hidden", ""} {
		_, err := c.Oracle(tenant)
		var re *client.RemoteError
		if !errors.As(err, &re) || re.Code != wire.CodeUnknownTenant {
			t.Fatalf("Oracle(%q) err = %v, want RemoteError CodeUnknownTenant", tenant, err)
		}
	}
	// The connection survives the refusals.
	if _, err := c.Oracle("synth"); err != nil {
		t.Fatalf("Oracle(synth) after refusals: %v", err)
	}
}

// TestHealthSurfacesQuarantine replays a stream the trace has never seen;
// the divergence watchdog quarantines the thread server-side, and the
// protocol Health frame must surface it instead of hiding it.
func TestHealthSurfacesQuarantine(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 512)
	_, addr := startServer(t, Config{TraceDir: dir})

	o, err := client.Connect(addr, "synth", client.Config{})
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer func() {
		if err := o.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if h := o.Health(); h.State != pythia.Healthy {
		t.Fatalf("fresh oracle health = %s (%s), want healthy", h.State, h.Cause)
	}

	th := o.Thread(0)
	th.StartAtBeginning()
	// Events the reference trace does not contain: tracking collapses and
	// the watchdog must pull the thread's predictions.
	for i := 0; i < 512; i++ {
		th.Submit(o.Intern(fmt.Sprintf("alien:%d", i%7)))
	}
	h := o.Health()
	if h.State != pythia.Quarantined {
		t.Fatalf("health after divergence = %s (%s), want quarantined", h.State, h.Cause)
	}
	if h.QuarantinedThreads != 1 {
		t.Fatalf("QuarantinedThreads = %d, want 1", h.QuarantinedThreads)
	}
	if _, ok := th.PredictAt(1); ok {
		t.Fatal("quarantined thread still answered a prediction")
	}
}

func TestServerWideHealth(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 64)
	_, addr := startServer(t, Config{TraceDir: dir})

	c := dialRaw(t, addr)
	regFor(t, c, "synth") // load the tenant

	c.send(wire.THealth, wire.AppendHealth(nil, ""))
	typ, payload := c.recv()
	if typ != wire.THealthInfo {
		t.Fatalf("expected HealthInfo, got %s", typ)
	}
	hi, err := wire.ParseHealthInfo(payload)
	if err != nil {
		t.Fatalf("parsing HealthInfo: %v", err)
	}
	if hi.State != wire.StateHealthy || hi.Oracles != 1 {
		t.Fatalf("server health = %+v, want healthy with 1 oracle", hi)
	}

	// Health of a tenant nobody loaded is a refusal, not a stall.
	c.send(wire.THealth, wire.AppendHealth(nil, "unloaded"))
	c.expectError(wire.CodeUnknownTenant)
}

func TestTenantRefcounting(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 64)
	srv, addr := startServer(t, Config{TraceDir: dir})

	o, err := client.Connect(addr, "synth", client.Config{})
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	if _, ok := srv.st.healthOf("synth"); !ok {
		t.Fatal("tenant not loaded while a connection pins it")
	}
	if err := o.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The connection goroutine releases the tenant asynchronously after
	// the socket closes.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := srv.st.healthOf("synth"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tenant still loaded after last reference closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProtocolFatalErrors(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 64)
	_, addr := startServer(t, Config{TraceDir: dir})

	t.Run("bad version", func(t *testing.T) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer func() {
			if err := nc.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
				t.Logf("close: %v", err)
			}
		}()
		bw := bufio.NewWriter(nc)
		hello := wire.AppendHello(nil, 0)
		hello[5] ^= 0xff // skew the low version byte (the last byte is flags)
		if err := wire.WriteFrame(bw, wire.THello, hello); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		br := bufio.NewReader(nc)
		var buf []byte
		typ, payload, err := wire.ReadFrame(br, &buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if typ != wire.TError {
			t.Fatalf("expected Error, got %s", typ)
		}
		code, _, perr := wire.ParseError(payload)
		if perr != nil || code != wire.CodeBadVersion {
			t.Fatalf("code = %v (parse err %v), want CodeBadVersion", code, perr)
		}
	})

	t.Run("unknown session is fatal", func(t *testing.T) {
		c := dialRaw(t, addr)
		c.send(wire.TPredictAt, wire.AppendPredictAt(nil, 99, 1))
		c.expectError(wire.CodeUnknownSession)
		// The server closes the connection after a fatal error.
		if _, _, err := wire.ReadFrame(c.br, &c.buf); err == nil {
			t.Fatal("connection still open after fatal protocol error")
		}
	})

	t.Run("duplicate open retires the stale session", func(t *testing.T) {
		// Last open wins: a client that lost an OpenSession response reopens
		// the same (tenant, thread) after a resume. The server must hand out
		// a fresh session and retire the orphaned one rather than refuse —
		// a refusal would wedge the client permanently (see openSession).
		c := dialRaw(t, addr)
		old := c.openSession("synth", 0, 0)
		fresh := c.openSession("synth", 0, 0)
		if fresh == old {
			t.Fatalf("reopen returned the stale session id %d", old)
		}
		// The connection keeps serving and the fresh session answers.
		c.send(wire.TSubmit, wire.AppendSubmit(nil, fresh, 0))
		c.send(wire.TPredictAt, wire.AppendPredictAt(nil, fresh, 1))
		typ, _ := c.recv()
		if typ != wire.TPrediction {
			t.Fatalf("fresh session: expected Prediction, got %s", typ)
		}
		// The retired id is gone; using it is the usual fatal unknown-session.
		c.send(wire.TPredictAt, wire.AppendPredictAt(nil, old, 1))
		c.expectError(wire.CodeUnknownSession)
	})
}

// TestPredictSequenceCountClamped: the count in a PredictSequence frame is
// attacker-controlled; the server must clamp it to what one response frame
// can carry instead of letting an 8-byte request demand a multi-GiB
// prediction buffer. Negative counts must answer an empty sequence, not
// panic the oracle.
func TestPredictSequenceCountClamped(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 64)
	_, addr := startServer(t, Config{TraceDir: dir})

	c := dialRaw(t, addr)
	sid := c.openSession("synth", 0, wire.FlagStartAtBeginning)

	for _, n := range []int{math.MaxInt32, wire.MaxPredictions + 1, -1, math.MinInt32} {
		c.send(wire.TPredictSequence, wire.AppendPredictSequence(nil, sid, n))
		typ, payload := c.recv()
		if typ != wire.TPredictions {
			t.Fatalf("n=%d: expected Predictions, got %s", n, typ)
		}
		preds, err := wire.ParsePredictions(payload)
		if err != nil {
			t.Fatalf("n=%d: parsing Predictions: %v", n, err)
		}
		if len(preds) > wire.MaxPredictions {
			t.Fatalf("n=%d: %d predictions, past the frame bound", n, len(preds))
		}
		if n < 0 && len(preds) != 0 {
			t.Fatalf("n=%d: %d predictions, want none", n, len(preds))
		}
	}
	// The connection is still usable afterwards.
	c.send(wire.TPredictAt, wire.AppendPredictAt(nil, sid, 1))
	if typ, _ := c.recv(); typ != wire.TPrediction {
		t.Fatalf("after clamped requests: expected Prediction, got %s", typ)
	}
}

// TestPredictSequenceMaxPredictionsBoundary pins the exact frame-capacity
// edge on both paths: a count of exactly wire.MaxPredictions is legal and
// answered, one past it is clamped — never an error and never a closed
// connection. Together with the untrusted-size analyzer (which fails the
// build if the server clamp is deleted) this is the regression fence for
// the PR 5 MaxPredictions incident.
func TestPredictSequenceMaxPredictionsBoundary(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 64)
	_, addr := startServer(t, Config{TraceDir: dir})

	counts := []int{wire.MaxPredictions, wire.MaxPredictions + 1}

	t.Run("server wire path", func(t *testing.T) {
		c := dialRaw(t, addr)
		sid := c.openSession("synth", 0, wire.FlagStartAtBeginning)
		for _, n := range counts {
			c.send(wire.TPredictSequence, wire.AppendPredictSequence(nil, sid, n))
			typ, payload := c.recv()
			if typ != wire.TPredictions {
				t.Fatalf("n=%d: expected Predictions, got %s (clamp, not error)", n, typ)
			}
			preds, err := wire.ParsePredictions(payload)
			if err != nil {
				t.Fatalf("n=%d: parsing Predictions: %v", n, err)
			}
			if len(preds) == 0 {
				t.Fatalf("n=%d: empty sequence on an open session", n)
			}
			if len(preds) > wire.MaxPredictions {
				t.Fatalf("n=%d: %d predictions, past the frame bound", n, len(preds))
			}
		}
	})

	t.Run("client library path", func(t *testing.T) {
		o, err := client.Connect(addr, "synth", client.Config{})
		if err != nil {
			t.Fatalf("connect: %v", err)
		}
		defer func() {
			if err := o.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		th := o.Thread(0)
		th.StartAtBeginning()
		for _, n := range counts {
			preds := th.PredictSequence(n)
			if len(preds) == 0 {
				t.Fatalf("n=%d: no predictions (the client must clamp, not fail)", n)
			}
			if len(preds) > wire.MaxPredictions {
				t.Fatalf("n=%d: %d predictions, past the frame bound", n, len(preds))
			}
		}
		if h := o.Health(); h.State != pythia.Healthy {
			t.Fatalf("health = %+v after boundary requests, want Healthy", h)
		}
	})
}

// TestConcurrentSubmitAndHealth: the remote oracle advertises the same
// concurrency contract as the in-process one — Health from a monitoring
// goroutine while another goroutine submits. Run with -race this guards
// the client's submit buffer handoff.
func TestConcurrentSubmitAndHealth(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "synth", 256)
	_, addr := startServer(t, Config{TraceDir: dir})

	o, err := client.Connect(addr, "synth", client.Config{})
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	defer func() {
		if err := o.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	th := o.Thread(0)
	th.StartAtBeginning()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Stay within the reference trace (256 reps × 4 events) so the
		// divergence watchdog has no reason to fire.
		for i := 0; i < 1000; i++ {
			th.Submit(o.Intern(names[i%len(names)]))
		}
	}()
	for i := 0; i < 50; i++ {
		if h := o.Health(); h.State != pythia.Healthy {
			t.Fatalf("health mid-run = %s (%s), want healthy", h.State, h.Cause)
		}
	}
	<-done
	if _, ok := th.PredictAt(1); !ok {
		t.Fatal("prediction failed after concurrent submit/health run")
	}
}

func TestSanitizeTenant(t *testing.T) {
	good := []string{"bt", "BT.small", "a-b_c.9"}
	for _, name := range good {
		if err := sanitizeTenant(name); err != nil {
			t.Errorf("sanitizeTenant(%q) = %v, want nil", name, err)
		}
	}
	bad := []string{"", ".", "..", "a/b", `a\b`, "../x", ".hidden", "a b", "a\x00b"}
	for _, name := range bad {
		if err := sanitizeTenant(name); err == nil {
			t.Errorf("sanitizeTenant(%q) = nil, want error", name)
		}
	}
}
