package server

import (
	"fmt"
	"sync"

	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pythia"
)

// connShm is one connection's shared-memory state: the mapped segment, its
// rings, and the pump goroutine that batch-decodes them. The conn goroutine
// owns negotiation and binding; the pump owns steady-state decode. A ring's
// mutex serializes the two wherever they meet, and the per-session ordering
// guarantee — no socket op on a bound session runs before its ring is
// drained — is what keeps shm predictions bit-identical to socket ones.
type connShm struct {
	seg   *transport.Segment
	rings []shmRing
	quit  chan struct{}
	wg    sync.WaitGroup
}

// shmRing pairs one mapped ring with its binding. All fields behind mu.
type shmRing struct {
	mu         sync.Mutex
	r          *transport.Ring
	th         *pythia.Thread // nil while unbound
	applied    *uint64        // bound session's applied counter (resume dedup)
	scratch    []int32        // decode buffer, sized at first bind
	subHorizon int            // predictions per subscription refresh, 0 = off
	subEvery   uint64         // refresh cadence in consumed events
	lastPush   uint64         // Consumed() at the last publish
}

// scratchChunk bounds the per-ring decode buffer: a drain loops in chunks,
// so server memory stays small no matter how large a ring the client asked
// for.
const scratchChunk = 4096

// shmRefused answers a refused negotiation: non-fatal, the client keeps the
// socket it is already on (the shm→uds→tcp fail-open chain).
func shmRefused(format string, args ...any) *protoErr {
	return &protoErr{code: wire.CodeShmSetup, msg: fmt.Sprintf(format, args...)}
}

// shmSetup handles TShmSetup: validate the claimed geometry as untrusted
// input, map the client's segment, and start the pump.
func (c *conn) shmSetup(ss wire.ShmSetup) error {
	if c.shm != nil {
		return badFrame("duplicate ShmSetup")
	}
	// Every field arrived off the wire; bound each one explicitly before it
	// feeds any size arithmetic.
	if ss.Rings < 1 || ss.Rings > transport.MaxRings {
		return shmRefused("rings %d out of range 1..%d", ss.Rings, transport.MaxRings)
	}
	if ss.Slots < transport.MinSlots || ss.Slots > transport.MaxSlots {
		return shmRefused("slots %d out of range %d..%d", ss.Slots, transport.MinSlots, transport.MaxSlots)
	}
	if ss.PredCap < 1 || ss.PredCap > transport.MaxPredCap {
		return shmRefused("prediction capacity %d out of range 1..%d", ss.PredCap, transport.MaxPredCap)
	}
	g := transport.Geometry{Rings: int(ss.Rings), Slots: int(ss.Slots), PredCap: int(ss.PredCap)}
	if err := g.Validate(); err != nil {
		return shmRefused("%v", err)
	}
	if ss.SegSize != uint64(g.SegmentSize()) {
		return shmRefused("segment size %d disagrees with geometry (%d)", ss.SegSize, g.SegmentSize())
	}
	seg, err := transport.OpenSegment(ss.Path, g.SegmentSize())
	if err != nil {
		return shmRefused("%v", err)
	}
	if err := transport.ReadHeader(seg.Bytes(), g); err != nil {
		c.closeRefusedSeg(seg)
		return shmRefused("%v", err)
	}
	rings, err := transport.MapRings(seg.Bytes(), g)
	if err != nil {
		c.closeRefusedSeg(seg)
		return shmRefused("%v", err)
	}

	sh := &connShm{seg: seg, rings: make([]shmRing, len(rings)), quit: make(chan struct{})}
	for i := range rings {
		sh.rings[i].r = &rings[i]
	}
	c.shm = sh
	c.ringOf = make(map[uint32]int, len(rings))
	sh.wg.Add(1)
	go c.pumpShm(sh)

	c.out = wire.AppendShmSetupOK(c.out[:0], uint32(len(rings)))
	return wire.WriteFrame(c.bw, wire.TShmSetupOK, c.out)
}

// closeRefusedSeg unmaps a segment whose setup was refused after opening.
// The refusal itself is reported to the client; an unmap failure is a local
// condition worth a log line but never a reason to kill the connection.
func (c *conn) closeRefusedSeg(seg *transport.Segment) {
	if err := seg.Close(); err != nil {
		c.srv.logf("pythiad: closing refused shm segment for %s: %v", c.nc.RemoteAddr(), err)
	}
}

// shmBind handles TShmBind: route a session's submissions through a ring.
func (c *conn) shmBind(sid, ring uint32) error {
	if c.shm == nil {
		return badFrame("ShmBind before ShmSetup")
	}
	th, perr := c.threadOf(sid)
	if perr != nil {
		return perr
	}
	if ring >= uint32(len(c.shm.rings)) {
		return badFrame(fmt.Sprintf("ring %d out of range (%d rings)", ring, len(c.shm.rings)))
	}
	if _, dup := c.ringOf[sid]; dup {
		return badFrame(fmt.Sprintf("session %d already ring-bound", sid))
	}
	r := &c.shm.rings[ring]
	r.mu.Lock()
	if r.th != nil {
		r.mu.Unlock()
		return badFrame(fmt.Sprintf("ring %d already bound", ring))
	}
	r.th = th
	r.applied = c.sessions[sid].applied
	if r.scratch == nil {
		r.scratch = make([]int32, scratchChunk)
	}
	r.subHorizon = 0
	r.subEvery = 0
	r.mu.Unlock()
	c.ringOf[sid] = int(ring)

	c.out = wire.AppendShmBound(c.out[:0], sid, ring)
	return wire.WriteFrame(c.bw, wire.TShmBound, c.out)
}

// shmSubscribe handles TSubscribe: keep the ring's prediction slot fresh.
// The initial publish happens here, inside the same locked section, so the
// client has predictions to read the moment Subscribed arrives.
func (c *conn) shmSubscribe(sub wire.Subscribe) error {
	if c.shm == nil {
		return badFrame("Subscribe before ShmSetup")
	}
	if _, perr := c.threadOf(sub.Session); perr != nil {
		return perr
	}
	idx, bound := c.ringOf[sub.Session]
	if !bound {
		return badFrame(fmt.Sprintf("session %d not ring-bound", sub.Session))
	}
	horizon := int(sub.Horizon)
	if horizon < 1 {
		horizon = 1
	}
	if horizon > wire.MaxPredictions {
		horizon = wire.MaxPredictions
	}
	r := &c.shm.rings[idx]
	r.mu.Lock()
	if pc := r.r.PredCap(); horizon > pc {
		horizon = pc
	}
	if _, err := drainRingLocked(r); err != nil {
		r.mu.Unlock()
		return &protoErr{code: wire.CodeBadFrame, msg: err.Error(), fatal: true}
	}
	r.subHorizon = horizon
	r.subEvery = uint64(sub.Every)
	if r.subEvery == 0 {
		r.subEvery = 1
	}
	publishLocked(r)
	r.mu.Unlock()

	c.out = wire.AppendSubscribed(c.out[:0], sub.Session)
	return wire.WriteFrame(c.bw, wire.TSubscribed, c.out)
}

// enterSession orders a socket op on sid after everything its bound ring
// holds: it drains the ring under the ring lock and returns the unlock. For
// unbound sessions (and non-shm connections) it is a no-op.
// pythia:hotpath — per-request on the serving path once shm is negotiated.
func (c *conn) enterSession(sid uint32) (func(), *protoErr) {
	if c.shm == nil {
		return releaseNop, nil
	}
	idx, bound := c.ringOf[sid]
	if !bound {
		return releaseNop, nil
	}
	r := &c.shm.rings[idx]
	r.mu.Lock()
	if _, err := drainRingLocked(r); err != nil {
		r.mu.Unlock()
		return nil, &protoErr{code: wire.CodeBadFrame, msg: err.Error(), fatal: true}
	}
	return r.mu.Unlock, nil
}

var releaseNop = func() {}

// shmUnbind detaches a closing session from its ring after a final drain.
func (c *conn) shmUnbind(sid uint32) *protoErr {
	if c.shm == nil {
		return nil
	}
	idx, bound := c.ringOf[sid]
	if !bound {
		return nil
	}
	r := &c.shm.rings[idx]
	r.mu.Lock()
	_, err := drainRingLocked(r)
	r.th = nil
	r.applied = nil
	r.subHorizon = 0
	r.mu.Unlock()
	delete(c.ringOf, sid)
	if err != nil {
		return &protoErr{code: wire.CodeBadFrame, msg: err.Error(), fatal: true}
	}
	return nil
}

// shmTeardown stops the pump and unmaps the segment. Runs in conn.teardown,
// before any parking decision: the final drain below makes each bound
// session's applied counter exact, which is what resume dedup relies on.
func (c *conn) shmTeardown() {
	if c.shm == nil {
		return
	}
	close(c.shm.quit)
	c.shm.wg.Wait()
	for i := range c.shm.rings {
		r := &c.shm.rings[i]
		r.mu.Lock()
		_, err := drainRingLocked(r)
		r.mu.Unlock()
		if err != nil {
			c.srv.logf("pythiad: final drain of shm ring %d of %s: %v", i, c.nc.RemoteAddr(), err)
		}
	}
	if err := c.shm.seg.Close(); err != nil {
		c.srv.logf("pythiad: closing shm segment for %s: %v", c.nc.RemoteAddr(), err)
	}
	c.shm = nil
}

// drainRingLocked is the server-side batch decode: it consumes everything
// the ring currently holds into the bound session, in scratch-sized chunks,
// and refreshes the subscription slot on cadence. Caller holds r.mu and has
// checked r.th != nil (or accepts the nil no-op).
func drainRingLocked(r *shmRing) (int, error) {
	if r.th == nil {
		return 0, nil
	}
	total := 0
	for {
		n, err := r.r.ConsumeInto(r.scratch)
		if err != nil {
			return total, err
		}
		if n == 0 {
			break
		}
		for _, id := range r.scratch[:n] {
			r.th.Submit(pythia.ID(id))
		}
		if r.applied != nil {
			*r.applied += uint64(n)
		}
		total += n
	}
	if r.subHorizon > 0 && r.r.Consumed()-r.lastPush >= r.subEvery {
		publishLocked(r)
	}
	return total, nil
}

// publishLocked refreshes the ring's seqlock'd prediction slot. Caller
// holds r.mu with r.th non-nil.
func publishLocked(r *shmRing) {
	r.r.PublishPredictions(r.th.PredictSequence(r.subHorizon))
	r.lastPush = r.r.Consumed()
}

// pumpShm is the per-connection decode pump: it sweeps every bound ring,
// batch-decoding into the session, and parks on an escalating backoff when
// nothing arrives. A corrupt ring (hostile or torn producer cursor) kills
// the connection — the pump closes the socket, which unblocks the conn
// goroutine's read and tears everything down.
func (c *conn) pumpShm(sh *connShm) {
	defer sh.wg.Done()
	idle := 0
	for {
		select {
		case <-sh.quit:
			return
		default:
		}
		worked := 0
		for i := range sh.rings {
			r := &sh.rings[i]
			r.mu.Lock()
			n, err := drainRingLocked(r)
			r.mu.Unlock()
			if err != nil {
				c.srv.logf("pythiad: shm ring %d of %s: %v", i, c.nc.RemoteAddr(), err)
				if cerr := c.nc.Close(); cerr != nil {
					c.srv.logf("pythiad: closing %s after ring corruption: %v", c.nc.RemoteAddr(), cerr)
				}
				return
			}
			worked += n
		}
		if worked > 0 {
			idle = 0
			continue
		}
		idle++
		transport.Park(idle)
	}
}
