package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/tracefile"
	"repro/internal/wire"
	"repro/pythia"
	"repro/pythia/client"
)

// startFleet starts one daemon per trace dir and joins them into a fleet
// at the given epoch. The returned addresses are in dir order and double
// as the daemons' fleet identities.
func startFleet(t *testing.T, dirs []string, epoch uint64, replicas int) ([]*Server, []string) {
	t.Helper()
	srvs := make([]*Server, len(dirs))
	addrs := make([]string, len(dirs))
	for i, dir := range dirs {
		srvs[i], addrs[i] = startServer(t, Config{TraceDir: dir})
	}
	for i, s := range srvs {
		s.ConfigureCluster(addrs[i], addrs, epoch, replicas)
	}
	return srvs, addrs
}

// tenantOwnedBy returns a tenant name owned by daemons[idx] under m,
// records a synthetic trace for it in dir, and returns its event names.
func tenantOwnedBy(t *testing.T, m cluster.Map, idx int, dir string) (string, []string) {
	t.Helper()
	for i := 0; i < 1024; i++ {
		name := fmt.Sprintf("tenant-%03d", i)
		if m.Owner(name) == m.Daemons[idx] {
			return name, synthTrace(t, dir, name, 64)
		}
	}
	t.Fatal("no tenant hashed onto the requested daemon in 1024 tries")
	return "", nil
}

// waitForFile polls until path exists (replication sweeps run async).
func waitForFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never appeared", path)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestShardMapServedAndGossiped(t *testing.T) {
	srv, addr := startServer(t, Config{TraceDir: t.TempDir()})
	srv.ConfigureCluster(addr, []string{addr, "127.0.0.1:1"}, 3, 1)

	c := dialRaw(t, addr)
	c.send(wire.TShardMap, wire.AppendShardMap(nil, 0))
	typ, payload := c.recv()
	if typ != wire.TShardMapR {
		t.Fatalf("got %s, want ShardMapR", typ)
	}
	sm, err := wire.ParseShardMapR(payload)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Epoch != 3 || sm.Replicas != 1 || len(sm.Daemons) != 2 {
		t.Fatalf("shard map = %+v, want epoch 3, 1 replica, 2 daemons", sm)
	}

	// A request carrying a higher epoch is gossip: the daemon adopts it
	// (max-wins) and the response reflects the adoption.
	c.send(wire.TShardMap, wire.AppendShardMap(nil, 9))
	_, payload = c.recv()
	if sm, err = wire.ParseShardMapR(payload); err != nil || sm.Epoch != 9 {
		t.Fatalf("epoch not adopted from gossip: %+v, %v", sm, err)
	}
	// A lower epoch is ignored.
	c.send(wire.TShardMap, wire.AppendShardMap(nil, 4))
	_, payload = c.recv()
	if sm, err = wire.ParseShardMapR(payload); err != nil || sm.Epoch != 9 {
		t.Fatalf("lower epoch regressed the map: %+v, %v", sm, err)
	}
	if got := srv.ClusterMap().Epoch; got != 9 {
		t.Fatalf("server epoch = %d, want 9", got)
	}
}

func TestWrongShardRefusalIsNonFatal(t *testing.T) {
	dir := t.TempDir()
	_, addrs := startFleet(t, []string{dir, dir}, 1, 0)
	m := cluster.Map{Epoch: 1, Replicas: 0, Daemons: addrs}
	ownedByA, _ := tenantOwnedBy(t, m, 0, dir)
	ownedByB, _ := tenantOwnedBy(t, m, 1, dir)

	// Daemon B refuses A's tenant with the non-fatal wrong-shard code...
	c := dialRaw(t, addrs[1])
	c.send(wire.TOpenSession, wire.AppendOpenSession(nil, wire.OpenSession{TID: -1, Tenant: ownedByA}))
	c.expectError(wire.CodeWrongShard)
	// ...and the same connection then serves a tenant B does own.
	c.openSession(ownedByB, -1, 0)
}

func TestModelOfferLastGenerationWins(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startServer(t, Config{TraceDir: t.TempDir()})
	_ = srv

	names := synthTrace(t, dir, "seed", 64)
	_ = names
	ts, err := pythia.LoadTraceSet(filepath.Join(dir, "seed.pythia"))
	if err != nil {
		t.Fatal(err)
	}
	offer := func(gen uint64) []byte {
		ts.Provenance = &pythia.Provenance{Generation: gen, Kind: pythia.ProvPromotion, Parent: gen - 1}
		var buf bytes.Buffer
		if err := tracefile.Write(&buf, ts); err != nil {
			t.Fatal(err)
		}
		return wire.AppendOfferModel(nil, wire.ModelOffer{
			Tenant: "mt", Generation: gen, Source: "10.0.0.7:9137", Payload: buf.Bytes(),
		})
	}
	c := dialRaw(t, addr)
	sendOffer := func(gen uint64) (bool, uint64) {
		c.send(wire.TOfferModel, offer(gen))
		typ, payload := c.recv()
		if typ != wire.TModelAccepted {
			t.Fatalf("got %s, want ModelAccepted", typ)
		}
		accepted, have, err := wire.ParseModelAccepted(payload)
		if err != nil {
			t.Fatal(err)
		}
		return accepted, have
	}

	if ok, have := sendOffer(5); !ok || have != 5 {
		t.Fatalf("first offer: accepted=%v have=%d, want accepted gen 5", ok, have)
	}
	if ok, have := sendOffer(4); ok || have != 5 {
		t.Fatalf("stale offer: accepted=%v have=%d, want rejected, still gen 5", ok, have)
	}
	if ok, have := sendOffer(6); !ok || have != 6 {
		t.Fatalf("newer offer: accepted=%v have=%d, want accepted gen 6", ok, have)
	}

	got, err := pythia.LoadTraceSet(filepath.Join(srv.cfg.TraceDir, "mt.pythia"))
	if err != nil {
		t.Fatalf("committed model unreadable: %v", err)
	}
	p := got.Provenance
	if p == nil || p.Generation != 6 || p.ReplicatedFrom != "10.0.0.7:9137" {
		t.Fatalf("committed provenance %+v, want generation 6 replicated from 10.0.0.7:9137", p)
	}
	if p.Kind != pythia.ProvPromotion || p.Parent != 5 {
		t.Fatalf("lineage did not survive replication: %+v", p)
	}

	// FetchModel round-trips the committed generation back out.
	c.send(wire.TFetchModel, wire.AppendFetchModel(nil, "mt"))
	typ, payload := c.recv()
	if typ != wire.TOfferModel {
		t.Fatalf("got %s, want OfferModel", typ)
	}
	om, err := wire.ParseOfferModel(payload)
	if err != nil {
		t.Fatal(err)
	}
	if om.Generation != 6 || om.Tenant != "mt" {
		t.Fatalf("fetched offer %+v, want generation 6 of mt", om)
	}
	if _, err := tracefile.Read(bytes.NewReader(om.Payload)); err != nil {
		t.Fatalf("fetched payload does not decode: %v", err)
	}
}

func TestEpochBumpMigratesTenantWithLineage(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	srvs, addrs := startFleet(t, []string{dirA, dirB}, 1, 0)

	// Find a tenant that daemon A owns at epoch 1 but daemon B owns at
	// epoch 2, so the gossiped bump forces a planned handoff A -> B.
	m1 := cluster.Map{Epoch: 1, Replicas: 0, Daemons: addrs}
	m2 := cluster.Map{Epoch: 2, Replicas: 0, Daemons: addrs}
	tenant := ""
	for i := 0; i < 4096 && tenant == ""; i++ {
		name := fmt.Sprintf("mig-%04d", i)
		if m1.Owner(name) == addrs[0] && m2.Owner(name) == addrs[1] {
			tenant = name
		}
	}
	if tenant == "" {
		t.Fatal("no tenant flips ownership A->B across the epoch bump")
	}
	synthTrace(t, dirA, tenant, 64)
	// Stamp lineage so the migration has something to preserve.
	path := filepath.Join(dirA, tenant+".pythia")
	ts, err := pythia.LoadTraceSet(path)
	if err != nil {
		t.Fatal(err)
	}
	ts.Provenance = &pythia.Provenance{Generation: 7, Kind: pythia.ProvPromotion, Parent: 6, UnixNanos: 99}
	if err := pythia.SaveTraceSet(path, ts); err != nil {
		t.Fatal(err)
	}

	// Gossip the bump to A; adoption triggers its migration sweep.
	c := dialRaw(t, addrs[0])
	c.send(wire.TShardMap, wire.AppendShardMap(nil, 2))
	if typ, _ := c.recv(); typ != wire.TShardMapR {
		t.Fatalf("got %s, want ShardMapR", typ)
	}

	migrated := filepath.Join(dirB, tenant+".pythia")
	waitForFile(t, migrated)
	got, err := pythia.LoadTraceSet(migrated)
	if err != nil {
		t.Fatal(err)
	}
	p := got.Provenance
	if p == nil || p.Generation != 7 || p.Kind != pythia.ProvPromotion || p.Parent != 6 || p.UnixNanos != 99 {
		t.Fatalf("lineage did not survive migration: %+v", p)
	}
	if p.ReplicatedFrom != addrs[0] {
		t.Fatalf("ReplicatedFrom = %q, want source daemon %s", p.ReplicatedFrom, addrs[0])
	}
	// B (owner under epoch 2, having heard nothing yet) serves the tenant
	// once its own epoch catches up via A's sweep-time gossip or a direct
	// probe; force it here and assert the session opens.
	srvs[1].ConfigureCluster(addrs[1], addrs, 2, 0)
	cb := dialRaw(t, addrs[1])
	cb.openSession(tenant, -1, 0)
}

func TestSweepKeepsWarmReplica(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()

	// Record before clustering so the startup sweep sees the file; with
	// one replica on a two-daemon fleet, every tenant lives on both sides
	// whichever one owns it.
	synthTrace(t, dirA, "warm", 64)
	_, addrs := startFleet(t, []string{dirA, dirB}, 1, 1)
	waitForFile(t, filepath.Join(dirB, "warm.pythia"))
	got, err := pythia.LoadTraceSet(filepath.Join(dirB, "warm.pythia"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Provenance == nil || got.Provenance.ReplicatedFrom != addrs[0] {
		t.Fatalf("replica provenance %+v, want ReplicatedFrom %s", got.Provenance, addrs[0])
	}
}

func TestFleetReroutesAfterWrongShard(t *testing.T) {
	dir := t.TempDir()
	srvs, addrs := startFleet(t, []string{dir, dir}, 1, 0)
	m1 := cluster.Map{Epoch: 1, Replicas: 0, Daemons: addrs}
	m2 := cluster.Map{Epoch: 2, Replicas: 0, Daemons: addrs}
	tenant := ""
	for i := 0; i < 4096 && tenant == ""; i++ {
		name := fmt.Sprintf("flip-%04d", i)
		if m1.Owner(name) != m2.Owner(name) {
			tenant = name
		}
	}
	if tenant == "" {
		t.Fatal("no tenant flips ownership across the epoch bump")
	}
	synthTrace(t, dir, tenant, 64)

	f, err := client.DialFleet(addrs[0]+","+addrs[1], client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Errorf("fleet close: %v", err)
		}
	}()
	if got := f.Map().Epoch; got != 1 {
		t.Fatalf("bootstrap epoch = %d, want 1", got)
	}
	o, err := f.Oracle(tenant)
	if err != nil {
		t.Fatalf("routing at epoch 1: %v", err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	// The fleet's cached map goes stale: both daemons move to epoch 2 and
	// the tenant's ownership flips. The next open must hit CodeWrongShard,
	// refresh, and land on the new owner.
	for i, s := range srvs {
		s.ConfigureCluster(addrs[i], addrs, 2, 0)
	}
	o, err = f.Oracle(tenant)
	if err != nil {
		t.Fatalf("rerouting after epoch bump: %v", err)
	}
	defer func() {
		if err := o.Close(); err != nil {
			t.Errorf("oracle close: %v", err)
		}
	}()
	if got := f.Map().Epoch; got != 2 {
		t.Fatalf("fleet epoch after reroute = %d, want 2", got)
	}
	if got, want := f.Owner(tenant), m2.Owner(tenant); got != want {
		t.Fatalf("fleet owner = %s, want %s", got, want)
	}
}

func TestShardMapRefreshUnderConcurrentSubmit(t *testing.T) {
	dir := t.TempDir()
	_, addrs := startFleet(t, []string{dir, dir}, 1, 0)
	names := synthTrace(t, dir, "busy", 64)

	f, err := client.DialFleet(addrs[0]+","+addrs[1], client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Errorf("fleet close: %v", err)
		}
	}()
	o, err := f.Oracle("busy")
	if err != nil {
		t.Fatal(err)
	}
	th := o.Thread(0)
	th.StartAtBeginning()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			th.Submit(o.Intern(names[i%len(names)]))
			if i%64 == 0 {
				th.PredictAt(4)
			}
		}
		th.Flush()
	}()
	for i := 0; i < 50; i++ {
		if err := f.Refresh(); err != nil {
			t.Errorf("refresh %d: %v", i, err)
			break
		}
		_ = f.Owner("busy")
	}
	wg.Wait()
	if _, ok := th.PredictAt(1); !ok {
		t.Fatal("no prediction after concurrent refresh storm")
	}
}

func TestTenantBudgetGatesRequests(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "hot", 64)
	synthTrace(t, dir, "cold", 64)
	_, addr := startServer(t, Config{
		TraceDir:           dir,
		TenantEventsPerSec: 50,
		TenantBurst:        10,
	})

	c := dialRaw(t, addr)
	hot := c.openSession("hot", 0, 0)
	// Overdraft the budget: submits are one-way and never refused, they
	// just drive the balance negative.
	ids := make([]int32, 512)
	c.send(wire.TSubmitBatch, wire.AppendSubmitBatch(nil, hot, ids))

	// The next gated request for the hot tenant is refused with a
	// retry-after hint...
	c.send(wire.TPredictAt, wire.AppendPredictAt(nil, hot, 4))
	typ, payload := c.recv()
	if typ != wire.TError {
		t.Fatalf("got %s, want RetryLater error", typ)
	}
	code, _, retryMs, err := wire.ParseErrorRetry(payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != wire.CodeRetryLater || retryMs == 0 {
		t.Fatalf("got code %s retryMs %d, want retry-later with a hint", code, retryMs)
	}
	// ...and so is a fan-out attempt (new session on the same tenant)...
	c.send(wire.TOpenSession, wire.AppendOpenSession(nil, wire.OpenSession{TID: 1, Tenant: "hot"}))
	c.expectError(wire.CodeRetryLater)
	// ...while submits still ack (connection alive, events never refused)
	// and an innocent tenant on the same connection is untouched.
	c.send(wire.TSubmit, wire.AppendSubmit(nil, hot, 0))
	cold := c.openSession("cold", 0, 0)
	c.send(wire.TPredictAt, wire.AppendPredictAt(nil, cold, 4))
	if typ, _ := c.recv(); typ != wire.TPrediction {
		t.Fatalf("cold tenant got %s, want Prediction", typ)
	}
}
