package server

// Serving-side model lifecycle tests: the ModelInfo/Promote/Rollback wire
// ops against a learning daemon, a promotion racing a reconnect's
// park/resume cycle, and the frozen-equivalence guarantee — a learning
// tenant that never promotes answers bit-identically to a frozen local
// oracle even across connection cuts.

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaosnet"
	"repro/internal/wire"
	"repro/pythia"
	"repro/pythia/client"
)

// learnConfig is a server Config with online learning tuned for tests:
// tiny epochs, but scored promotion effectively disabled (the margin can
// never be met) so only forced operations change generations.
func learnConfig(dir string) Config {
	return Config{
		TraceDir: dir,
		Learn: &pythia.LearnPolicy{
			EpochEvents:      64,
			PromoteEpochs:    2,
			PromoteMarginPct: 101,
		},
	}
}

// driftStream returns the tenant's pattern reversed — a workload the
// recorded model mispredicts but a shadow model learns.
func driftStream(names []string, total int) []string {
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	return repeatNames(rev, total)
}

func TestModelLifecycleOverWire(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "bt", 96)
	_, addr := startServer(t, learnConfig(dir))

	c, err := client.Dial(addr, client.Config{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	ro, err := c.Oracle("bt")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	rth := ro.Thread(0)

	mi, err := ro.ModelInfo()
	if err != nil {
		t.Fatalf("ModelInfo: %v", err)
	}
	if !mi.Enabled || mi.State != "learning" || mi.ServingGeneration != 1 {
		t.Fatalf("fresh learning tenant: %+v", mi)
	}
	// No shadow snapshot yet: a forced promotion must be refused without
	// poisoning the connection.
	if _, err := ro.Promote(); err == nil {
		t.Fatal("Promote succeeded with no shadow candidate")
	} else {
		var re *client.RemoteError
		if !errors.As(err, &re) || re.Code != wire.CodeLifecycle {
			t.Fatalf("Promote refusal = %v, want CodeLifecycle", err)
		}
	}

	for _, name := range driftStream(names, 512) {
		rth.Submit(ro.Intern(name))
	}
	rth.Flush()
	gen, err := ro.Promote()
	if err != nil {
		t.Fatalf("Promote after drift: %v", err)
	}
	if gen != 2 {
		t.Fatalf("promoted generation %d, want 2", gen)
	}
	mi, err = ro.ModelInfo()
	if err != nil {
		t.Fatalf("ModelInfo after promotion: %v", err)
	}
	if mi.State != "watching" || mi.ServingGeneration != 2 || mi.Promotions != 1 || len(mi.Retained) != 2 {
		t.Fatalf("post-promotion lifecycle: %+v", mi)
	}

	gen, err = ro.Rollback()
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if gen != 3 {
		t.Fatalf("rollback generation %d, want 3 (numbers never go back)", gen)
	}
	mi, err = ro.ModelInfo()
	if err != nil {
		t.Fatalf("ModelInfo after rollback: %v", err)
	}
	if mi.State != "learning" || mi.ServingGeneration != 3 || mi.Rollbacks != 1 {
		t.Fatalf("post-rollback lifecycle: %+v", mi)
	}
	// Nothing left to roll back to; the refusal is non-fatal.
	if _, err := ro.Rollback(); err == nil {
		t.Fatal("second Rollback succeeded with no previous generation")
	}
	if h := ro.Health(); h.Rollbacks != 1 || h.State != pythia.Degraded {
		t.Fatalf("rollback not latched in remote health: %+v", h)
	}
}

func TestLifecycleRefusedWithoutLearning(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "bt", 96)
	_, addr := startServer(t, Config{TraceDir: dir})

	c, err := client.Dial(addr, client.Config{RequestTimeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	ro, err := c.Oracle("bt")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	mi, err := ro.ModelInfo()
	if err != nil {
		t.Fatalf("ModelInfo: %v", err)
	}
	if mi.Enabled || mi.State != "frozen" {
		t.Fatalf("frozen tenant lifecycle: %+v", mi)
	}
	var re *client.RemoteError
	if _, err := ro.Promote(); !errors.As(err, &re) || re.Code != wire.CodeLifecycle {
		t.Fatalf("Promote on frozen tenant = %v, want CodeLifecycle", err)
	}
	// The refusal is non-fatal: the session keeps answering.
	if h := ro.Health(); h.State != pythia.Healthy {
		t.Fatalf("health after refusal: %+v", h)
	}
}

// TestReconnectAcrossPromotion promotes the shadow model while a client is
// mid-stream and then cuts the connection: the park/resume cycle must adopt
// the session with its promoted oracle intact (generation and counters
// survive), replay with zero duplicates and drops, and the post-promotion
// model must predict the drifted stream.
func TestReconnectAcrossPromotion(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "bt", 96)
	_, addr := startServer(t, learnConfig(dir))
	proxy, err := chaosnet.New(addr, chaosnet.Config{})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()

	c, err := client.Dial(proxy.Addr(), client.Config{
		ReconnectMinDelay: 2 * time.Millisecond,
		RequestTimeout:    2 * time.Second,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	ro, err := c.Oracle("bt")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	rth := ro.Thread(0)
	rth.StartAtBeginning()

	stream := driftStream(names, 1024)
	for i, name := range stream {
		rth.Submit(ro.Intern(name))
		switch i {
		case 400:
			rth.Flush()
			if gen, perr := ro.Promote(); perr != nil || gen != 2 {
				t.Fatalf("mid-stream Promote = %d, %v", gen, perr)
			}
		case 480:
			// Cut while the watch window is open: park/resume must carry the
			// promoted oracle, not rebuild a fresh generation-1 tenant.
			prev := c.Stats().Reconnects
			proxy.CutAll()
			waitReconnect(t, c, rth, prev)
		}
	}
	rth.Flush()

	mi, err := ro.ModelInfo()
	if err != nil {
		t.Fatalf("ModelInfo after reconnect: %v", err)
	}
	if mi.ServingGeneration != 2 || mi.Promotions != 1 {
		t.Fatalf("promotion did not survive the reconnect: %+v", mi)
	}
	st := c.Stats()
	if st.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", st.Reconnects)
	}
	if st.DroppedEvents != 0 {
		t.Fatalf("dropped %d events across the promotion reconnect, want 0", st.DroppedEvents)
	}
	// The promoted model has seen the drifted pattern; near-horizon
	// predictions on it must flow (the frozen model would mispredict, but
	// the session must at least answer from the promoted grammar).
	if _, ok := rth.PredictAt(1); !ok {
		t.Fatal("no prediction from the promoted model")
	}
}

// TestRemoteBitIdenticalLearningQuiescent pins the frozen-equivalence
// guarantee: with learning enabled but promotion unreachable, a remote
// tenant answers bit-identically to a frozen local oracle — across a
// connection cut — because the serving model is only ever swapped by a
// promotion, never by learning itself.
func TestRemoteBitIdenticalLearningQuiescent(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "bt", 96)
	_, addr := startServer(t, learnConfig(dir))
	ref, err := pythia.LoadTraceSet(filepath.Join(dir, "bt.pythia"))
	if err != nil {
		t.Fatalf("loading trace: %v", err)
	}
	proxy, err := chaosnet.New(addr, chaosnet.Config{})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer proxy.Close()

	localOracle, err := pythia.NewPredictOracle(ref, pythia.Config{})
	if err != nil {
		t.Fatalf("local oracle: %v", err)
	}
	local := localThread{localOracle.Thread(0)}

	c, err := client.Dial(proxy.Addr(), client.Config{
		ReconnectMinDelay: 2 * time.Millisecond,
		RequestTimeout:    2 * time.Second,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	ro, err := c.Oracle("bt")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	rth := ro.Thread(0)
	local.StartAtBeginning()
	rth.StartAtBeginning()

	for i, name := range repeatNames(names, 320) {
		local.Submit(localOracle.Intern(name))
		rth.Submit(ro.Intern(name))
		if i == 97 {
			prev := c.Stats().Reconnects
			proxy.CutAll()
			waitReconnect(t, c, rth, prev)
		}
		if i%37 == 0 {
			comparePoint(t, "learning-quiescent", local, rth, 16)
		}
	}
	rth.Flush()
	comparePoint(t, "learning-quiescent final", local, rth, 32)
	mi, err := ro.ModelInfo()
	if err != nil {
		t.Fatalf("ModelInfo: %v", err)
	}
	if mi.Promotions != 0 || mi.ServingGeneration != 1 {
		t.Fatalf("quiescent tenant promoted: %+v", mi)
	}
	if st := c.Stats(); st.DroppedEvents != 0 {
		t.Fatalf("dropped %d events, want 0", st.DroppedEvents)
	}
}
