package server

import (
	"bufio"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaosnet"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pythia"
	"repro/pythia/client"
)

// dialRawResume is dialRaw with the resume flag set; it returns the
// server-granted resume token alongside the connection.
func dialRawResume(t *testing.T, addr string) (*rawConn, uint64) {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := &rawConn{t: t, nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	t.Cleanup(func() {
		if err := nc.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Logf("closing raw conn: %v", err)
		}
	})
	c.send(wire.THello, wire.AppendHello(nil, wire.HelloFlagResume))
	typ, payload := c.recv()
	if typ != wire.THelloOK {
		t.Fatalf("handshake: got %s", typ)
	}
	_, token, _, err := wire.ParseHelloOK(payload)
	if err != nil {
		t.Fatalf("parsing HelloOK: %v", err)
	}
	return c, token
}

// resumeWithRetry polls TResume until the dead predecessor's sessions have
// been parked (teardown races the new connection) and returns the adopted
// sessions' applied counters.
func resumeWithRetry(t *testing.T, c *rawConn, token uint64) []wire.ResumedSession {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.send(wire.TResume, wire.AppendResume(nil, token))
		typ, payload := c.recv()
		if typ == wire.TResumed {
			rs, err := wire.ParseResumed(payload)
			if err != nil {
				t.Fatalf("parsing Resumed: %v", err)
			}
			return rs
		}
		if typ != wire.TError {
			t.Fatalf("resume: got %s, want Resumed or Error", typ)
		}
		code, msg, err := wire.ParseError(payload)
		if err != nil {
			t.Fatalf("parsing resume error: %v", err)
		}
		if code != wire.CodeNoResume {
			t.Fatalf("resume error %s (%s), want NoResume while parking races", code, msg)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions never parked for token %#x", token)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestResumeReplayDedup pins the resume protocol at the wire level: a dead
// connection's sessions are parked and adopted with their applied counters,
// and a replay overlapping what the server already applied is deduplicated
// exactly — no event is applied twice, late events are applied once.
func TestResumeReplayDedup(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "bt", 8)
	_, addr := startServer(t, Config{TraceDir: dir})

	c1, tok := dialRawResume(t, addr)
	if tok == 0 {
		t.Fatalf("no resume token granted")
	}
	reg := regFor(t, c1, "bt") // opens the meta session (sid 0)
	sid := c1.openSession("bt", 0, 0)
	a, b, cc, d := int32(reg["phase:a"]), int32(reg["phase:b"]), int32(reg["phase:c"]), int32(reg["phase:d"])
	for _, id := range []int32{a, b, cc} {
		c1.send(wire.TSubmit, wire.AppendSubmit(nil, sid, id))
	}
	// A round trip syncs the one-way submits before the connection dies.
	c1.send(wire.TPredictAt, wire.AppendPredictAt(nil, sid, 1))
	if typ, _ := c1.recv(); typ != wire.TPrediction {
		t.Fatalf("sync predict: got %s", typ)
	}
	if err := c1.nc.Close(); err != nil {
		t.Fatalf("killing c1: %v", err)
	}

	c2, tok2 := dialRawResume(t, addr)
	if tok2 == 0 || tok2 == tok {
		t.Fatalf("second connection token %#x (first %#x)", tok2, tok)
	}
	rs := resumeWithRetry(t, c2, tok)
	applied := make(map[uint32]uint64, len(rs))
	for _, r := range rs {
		applied[r.Session] = r.Applied
	}
	if got, found := applied[sid]; !found || got != 3 {
		t.Fatalf("resumed applied[%d] = %d (found %v), want 3", sid, got, found)
	}
	if got, found := applied[0]; !found || got != 0 {
		t.Fatalf("resumed meta applied = %d (found %v), want 0", got, found)
	}

	// Replay overlapping the applied prefix: sequences 2 and 3 must be
	// skipped, 4 applied.
	c2.send(wire.TReplay, wire.AppendReplay(nil, sid, 2, []int32{b, cc, d}))
	typ, payload := c2.recv()
	if typ != wire.TReplayed {
		t.Fatalf("replay: got %s", typ)
	}
	rsid, ap, err := wire.ParseReplayed(payload)
	if err != nil || rsid != sid || ap != 4 {
		t.Fatalf("Replayed = (%d, %d, %v), want (%d, 4, nil)", rsid, ap, err, sid)
	}

	// A second, fully-overlapping replay must be a no-op.
	c2.send(wire.TReplay, wire.AppendReplay(nil, sid, 1, []int32{a, b, cc, d}))
	typ, payload = c2.recv()
	if typ != wire.TReplayed {
		t.Fatalf("overlap replay: got %s", typ)
	}
	if _, ap, err = wire.ParseReplayed(payload); err != nil || ap != 4 {
		t.Fatalf("overlap Replayed applied = %d (%v), want 4", ap, err)
	}

	// The model saw exactly a,b,c,d: the next event must be phase:a again.
	c2.send(wire.TPredictAt, wire.AppendPredictAt(nil, sid, 1))
	typ, payload = c2.recv()
	if typ != wire.TPrediction {
		t.Fatalf("predict after replay: got %s", typ)
	}
	pr, ok, err := wire.ParsePrediction(payload)
	if err != nil || !ok {
		t.Fatalf("prediction after replay: ok=%v err=%v", ok, err)
	}
	if pr.EventID != a {
		t.Fatalf("predicted event %d after dedup'd replay, want %d (phase:a)", pr.EventID, a)
	}
}

// TestKeepaliveReapsSilentConns checks keepalive enforcement in both
// directions: a silent connection is reaped within the window, a
// heartbeating one survives many windows.
func TestKeepaliveReapsSilentConns(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "bt", 4)
	_, addr := startServer(t, Config{TraceDir: dir, Keepalive: 100 * time.Millisecond})

	t.Run("silent conn reaped", func(t *testing.T) {
		c := dialRaw(t, addr)
		if err := c.nc.SetReadDeadline(time.Now().Add(3 * time.Second)); err != nil {
			t.Fatalf("deadline: %v", err)
		}
		_, _, err := wire.ReadFrame(c.br, &c.buf)
		if err == nil {
			t.Fatalf("unexpected frame from server on a silent connection")
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatalf("server kept a silent connection past the keepalive window")
		}
	})

	t.Run("heartbeats keep conn alive", func(t *testing.T) {
		c := dialRaw(t, addr)
		// 8 × 40ms straddles several 100ms windows; each heartbeat must
		// re-arm the reaper.
		for i := 0; i < 8; i++ {
			time.Sleep(40 * time.Millisecond)
			c.send(wire.THeartbeat, nil)
			if typ, _ := c.recv(); typ != wire.THeartbeatAck {
				t.Fatalf("heartbeat %d: got %s", i, typ)
			}
		}
	})
}

// repeatNames tiles a name pattern to exactly total events.
func repeatNames(names []string, total int) []string {
	stream := make([]string, 0, total+len(names))
	for len(stream) < total {
		stream = append(stream, names...)
	}
	return stream[:total]
}

// comparePoint fails the test unless local and remote predictions are
// bit-identical right now.
func comparePoint(t *testing.T, tag string, local, remote threadAPI, horizon int) {
	t.Helper()
	ls, rs := local.PredictSequence(horizon), remote.PredictSequence(horizon)
	if len(ls) != len(rs) {
		t.Fatalf("%s: PredictSequence lengths %d local vs %d remote", tag, len(ls), len(rs))
	}
	for k := range ls {
		if !samePrediction(ls[k], rs[k]) {
			t.Fatalf("%s: step %d: local %+v remote %+v", tag, k, ls[k], rs[k])
		}
	}
	lp, lok := local.PredictAt(4)
	rp, rok := remote.PredictAt(4)
	if lok != rok || !samePrediction(lp, rp) {
		t.Fatalf("%s: PredictAt(4): local %+v/%v remote %+v/%v", tag, lp, lok, rp, rok)
	}
}

// waitReconnect pokes the remote thread until the client completes a
// reconnection beyond prev. The pokes surface the dead socket (triggering
// the reconnect) and then fail open while the client is offline.
func waitReconnect(t *testing.T, c *client.Client, rth *client.Thread, prev uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for c.Stats().Reconnects <= prev {
		rth.PredictAt(1)
		if time.Now().After(deadline) {
			t.Fatalf("reconnect did not complete (stats %+v)", c.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRemoteBitIdenticalAcrossReconnect is the resilience acceptance test:
// on every transport tier, a client whose connection is severed mid-stream
// must — after resume (or fresh reopen) and shadow replay — converge to
// predictions bit-identical to an in-process oracle fed the same stream,
// with zero events dropped or duplicated.
func TestRemoteBitIdenticalAcrossReconnect(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "bt", 96)
	_, tcpAddr, unixAddr := startServerTransports(t, Config{TraceDir: dir})
	ref, err := pythia.LoadTraceSet(filepath.Join(dir, "bt.pythia"))
	if err != nil {
		t.Fatalf("loading trace: %v", err)
	}
	stream := repeatNames(names, 320)
	cuts := map[int]bool{97: true, 211: true}

	cases := []struct {
		name   string
		addr   string
		shared bool
	}{
		{"tcp", tcpAddr, false},
		{"unix", unixAddr, false},
		{"shm", unixAddr, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			proxy, err := chaosnet.New(tc.addr, chaosnet.Config{})
			if err != nil {
				t.Fatalf("proxy: %v", err)
			}
			defer proxy.Close()

			localOracle, err := pythia.NewPredictOracle(ref, pythia.Config{})
			if err != nil {
				t.Fatalf("local oracle: %v", err)
			}
			local := localThread{localOracle.Thread(0)}

			c, err := client.Dial(proxy.Addr(), client.Config{
				SharedMem:         tc.shared,
				ReconnectMinDelay: 2 * time.Millisecond,
				RequestTimeout:    2 * time.Second,
			})
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer func() {
				if err := c.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			ro, err := c.Oracle("bt")
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			rth := ro.Thread(0)
			local.StartAtBeginning()
			rth.StartAtBeginning()

			wantReconnects := uint64(0)
			for i, name := range stream {
				local.Submit(localOracle.Intern(name))
				rth.Submit(ro.Intern(name))
				if cuts[i] {
					wantReconnects++
					prev := c.Stats().Reconnects
					proxy.CutAll()
					waitReconnect(t, c, rth, prev)
				}
				if i%37 == 0 {
					comparePoint(t, tc.name, local, rth, 16)
				}
			}
			rth.Flush()
			comparePoint(t, tc.name+" final", local, rth, 32)
			if err := c.Err(); err != nil {
				t.Fatalf("client error after convergence: %v", err)
			}
			st := c.Stats()
			if st.Reconnects != wantReconnects {
				t.Fatalf("reconnects = %d, want %d", st.Reconnects, wantReconnects)
			}
			if st.DroppedEvents != 0 {
				t.Fatalf("dropped %d events across reconnects, want 0", st.DroppedEvents)
			}
		})
	}
}

// TestReconnectAcrossDaemonRestart kills the daemon outright and restarts
// it on the same unix socket path: the already-connected client must
// redial (transport.Listen clears the stale socket), fall back from resume
// to a fresh reopen — the restarted daemon knows no tokens — and replay its
// shadow buffer to bit-identical convergence.
func TestReconnectAcrossDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "bt", 96)
	sockDir, err := os.MkdirTemp("", "pythia-uds")
	if err != nil {
		t.Fatalf("socket dir: %v", err)
	}
	defer os.RemoveAll(sockDir)
	addr := "unix://" + filepath.Join(sockDir, "d.sock")

	startOn := func() (*Server, chan error) {
		ln, err := transport.Listen(addr)
		if err != nil {
			t.Fatalf("listen %s: %v", addr, err)
		}
		srv := New(Config{TraceDir: dir, DrainTimeout: 100 * time.Millisecond})
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(ln) }()
		return srv, errc
	}
	srv1, err1 := startOn()

	ref, err := pythia.LoadTraceSet(filepath.Join(dir, "bt.pythia"))
	if err != nil {
		t.Fatalf("loading trace: %v", err)
	}
	localOracle, err := pythia.NewPredictOracle(ref, pythia.Config{})
	if err != nil {
		t.Fatalf("local oracle: %v", err)
	}
	local := localThread{localOracle.Thread(0)}

	c, err := client.Dial(addr, client.Config{
		ReconnectMinDelay: 2 * time.Millisecond,
		RequestTimeout:    2 * time.Second,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	ro, err := c.Oracle("bt")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	rth := ro.Thread(0)
	local.StartAtBeginning()
	rth.StartAtBeginning()

	stream := repeatNames(names, 160)
	for _, name := range stream[:80] {
		local.Submit(localOracle.Intern(name))
		rth.Submit(ro.Intern(name))
	}
	comparePoint(t, "before restart", local, rth, 16)

	if err := srv1.Shutdown(); err != nil {
		t.Fatalf("shutdown srv1: %v", err)
	}
	if err := <-err1; err != nil {
		t.Fatalf("serve srv1: %v", err)
	}
	srv2, err2 := startOn()
	t.Cleanup(func() {
		if err := srv2.Shutdown(); err != nil {
			t.Errorf("shutdown srv2: %v", err)
		}
		if err := <-err2; err != nil {
			t.Errorf("serve srv2: %v", err)
		}
	})

	waitReconnect(t, c, rth, 0)

	for _, name := range stream[80:] {
		local.Submit(localOracle.Intern(name))
		rth.Submit(ro.Intern(name))
	}
	rth.Flush()
	comparePoint(t, "after restart", local, rth, 32)
	if err := c.Err(); err != nil {
		t.Fatalf("client error after restart recovery: %v", err)
	}
	if st := c.Stats(); st.DroppedEvents != 0 {
		t.Fatalf("dropped %d events across the restart, want 0", st.DroppedEvents)
	}
}

// TestChaosMatrix drives the client through a chaosnet proxy injecting a
// deterministic fault schedule, then mutes the faults and requires
// convergence to bit-identical predictions. The default run covers a
// reduced matrix; PYTHIA_CHAOS=1 (the check.sh --chaos leg) runs all of it.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix reconnects through injected faults")
	}
	dir := t.TempDir()
	names := synthTrace(t, dir, "bt", 96)
	_, tcpAddr, unixAddr := startServerTransports(t, Config{TraceDir: dir})
	ref, err := pythia.LoadTraceSet(filepath.Join(dir, "bt.pythia"))
	if err != nil {
		t.Fatalf("loading trace: %v", err)
	}
	stream := repeatNames(names, 256)

	type matrixCase struct {
		name   string
		addr   string
		shared bool
		faults chaosnet.Config
	}
	cases := []matrixCase{
		{"tcp-resets", tcpAddr, false, chaosnet.Config{Seed: 7, ResetEvery: 9}},
		{"unix-torn", unixAddr, false, chaosnet.Config{Seed: 11, TornEvery: 13}},
	}
	if os.Getenv("PYTHIA_CHAOS") == "1" {
		cases = append(cases,
			matrixCase{"tcp-latency-drops", tcpAddr, false, chaosnet.Config{Seed: 3, Latency: 200 * time.Microsecond, DropEvery: 17}},
			matrixCase{"unix-stalls", unixAddr, false, chaosnet.Config{Seed: 5, StallEvery: 11, StallFor: 30 * time.Millisecond}},
			matrixCase{"shm-resets", unixAddr, true, chaosnet.Config{Seed: 9, ResetEvery: 7}},
		)
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			proxy, err := chaosnet.New(tc.addr, tc.faults)
			if err != nil {
				t.Fatalf("proxy: %v", err)
			}
			defer proxy.Close()

			localOracle, err := pythia.NewPredictOracle(ref, pythia.Config{})
			if err != nil {
				t.Fatalf("local oracle: %v", err)
			}
			local := localThread{localOracle.Thread(0)}

			// Dialing and opening the oracle go through the faulty proxy
			// themselves; retry until the handshake slips between faults.
			setup := time.Now().Add(10 * time.Second)
			var c *client.Client
			for {
				c, err = client.Dial(proxy.Addr(), client.Config{
					SharedMem:         tc.shared,
					ReconnectMinDelay: 2 * time.Millisecond,
					DialTimeout:       2 * time.Second,
					RequestTimeout:    2 * time.Second,
				})
				if err == nil {
					break
				}
				if time.Now().After(setup) {
					t.Fatalf("dial through chaos: %v", err)
				}
				time.Sleep(10 * time.Millisecond)
			}
			defer c.Close()
			var ro *client.Oracle
			for {
				ro, err = c.Oracle("bt")
				if err == nil {
					break
				}
				if time.Now().After(setup) {
					t.Fatalf("oracle through chaos: %v", err)
				}
				time.Sleep(10 * time.Millisecond)
			}
			rth := ro.Thread(0)

			for i, name := range stream {
				local.Submit(localOracle.Intern(name))
				rth.Submit(ro.Intern(name))
				if i%19 == 0 {
					rth.PredictAt(2) // keeps round trips in the fault path; result irrelevant
				}
			}

			proxy.ClearFaults()
			deadline := time.Now().Add(30 * time.Second)
			for {
				rth.Flush()
				if c.Err() == nil {
					if _, ok := rth.PredictAt(1); ok {
						break
					}
				}
				if time.Now().After(deadline) {
					t.Fatalf("no convergence after chaos: err=%v stats=%+v", c.Err(), c.Stats())
				}
				time.Sleep(5 * time.Millisecond)
			}
			comparePoint(t, tc.name, local, rth, 24)
			if st := c.Stats(); st.DroppedEvents != 0 {
				t.Fatalf("dropped %d events under chaos, want 0", st.DroppedEvents)
			}
		})
	}
}

// TestRemoteBitIdenticalFleetFailover extends the reconnect acceptance
// test to a two-daemon fleet: the tenant's model is replicated to the
// second daemon by the cluster sweep, the client's dial list is the
// tenant's assignment (owner first, replica second), and the owner is
// partitioned away mid-stream. The client must redial onto the warm
// replica, reopen fresh (the replica knows no resume token), replay its
// shadow ring, and converge to predictions bit-identical to an in-process
// oracle fed the same stream — zero events dropped or duplicated.
func TestRemoteBitIdenticalFleetFailover(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	names := synthTrace(t, dirA, "bt", 96)
	srvA, addrA := startServer(t, Config{TraceDir: dirA})
	srvB, addrB := startServer(t, Config{TraceDir: dirB})

	// Clients reach the daemons through chaos proxies, so the fleet
	// addresses — what the shard map advertises and what daemons dial for
	// replication — are the proxy fronts.
	proxyA, err := chaosnet.New(addrA, chaosnet.Config{})
	if err != nil {
		t.Fatalf("proxy A: %v", err)
	}
	defer proxyA.Close()
	proxyB, err := chaosnet.New(addrB, chaosnet.Config{})
	if err != nil {
		t.Fatalf("proxy B: %v", err)
	}
	defer proxyB.Close()
	daemons := []string{proxyA.Addr(), proxyB.Addr()}
	srvA.ConfigureCluster(daemons[0], daemons, 1, 1)
	srvB.ConfigureCluster(daemons[1], daemons, 1, 1)

	// The startup sweep ships bt from A to B (whoever owns it, one replica
	// on a two-daemon fleet means both hold it).
	waitForFile(t, filepath.Join(dirB, "bt.pythia"))

	ref, err := pythia.LoadTraceSet(filepath.Join(dirA, "bt.pythia"))
	if err != nil {
		t.Fatalf("loading trace: %v", err)
	}
	localOracle, err := pythia.NewPredictOracle(ref, pythia.Config{})
	if err != nil {
		t.Fatalf("local oracle: %v", err)
	}
	local := localThread{localOracle.Thread(0)}

	m := srvA.ClusterMap()
	assignment := m.Assignment("bt")
	if len(assignment) != 2 {
		t.Fatalf("assignment %v, want owner+replica", assignment)
	}
	ownerProxy := proxyA
	if assignment[0] == proxyB.Addr() {
		ownerProxy = proxyB
	}

	stream := repeatNames(names, 320)
	c, err := client.Dial(assignment[0]+","+assignment[1], client.Config{
		ReconnectMinDelay: 2 * time.Millisecond,
		RequestTimeout:    2 * time.Second,
		ShadowEvents:      4096, // must cover the whole stream for a fresh reopen
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	ro, err := c.Oracle("bt")
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	rth := ro.Thread(0)
	local.StartAtBeginning()
	rth.StartAtBeginning()

	killAt := 137
	for i, name := range stream {
		local.Submit(localOracle.Intern(name))
		rth.Submit(ro.Intern(name))
		if i == killAt {
			// Full partition of the owner: existing connections die and
			// redials are refused, so the fallback address — the warm
			// replica — is the only way back.
			prev := c.Stats().Reconnects
			ownerProxy.SetEnabled(false)
			ownerProxy.CutAll()
			waitReconnect(t, c, rth, prev)
		}
		if i%37 == 0 {
			comparePoint(t, "fleet", local, rth, 16)
		}
	}
	rth.Flush()
	comparePoint(t, "fleet final", local, rth, 32)
	if err := c.Err(); err != nil {
		t.Fatalf("client error after failover: %v", err)
	}
	st := c.Stats()
	if st.DroppedEvents != 0 {
		t.Fatalf("dropped %d events across the failover, want 0", st.DroppedEvents)
	}
	if st.Reconnects == 0 {
		t.Fatal("the partition never forced a reconnect")
	}
}
