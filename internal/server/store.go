package server

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/wire"
	"repro/pythia"
)

// storeShards is the number of independently locked shards in the trace
// store. Tenants hash across shards by name, so concurrent connections
// opening sessions on different tenants almost never contend on a lock.
const storeShards = 16

// errBadTenant rejects tenant names that could escape the trace directory
// or that no trace file could legally be named after.
var errBadTenant = errors.New("server: invalid tenant name")

// store is the sharded multi-tenant trace store: at most one loaded trace
// per tenant, loaded lazily on the first Acquire and unloaded when the last
// reference is released. Loading happens outside the shard lock, so a slow
// load of one tenant never blocks lookups of its shard siblings.
type store struct {
	dir    string
	shards [storeShards]storeShard
}

type storeShard struct {
	mu      sync.Mutex
	tenants map[string]*tenant
}

// tenant is one loaded trace plus the live oracles serving it. refs counts
// Acquire-minus-Release; the entry leaves the shard map at zero so an idle
// tenant's memory is reclaimed and a later Acquire reloads from disk.
type tenant struct {
	name string
	refs int

	ready chan struct{} // closed once ts/err are set
	ts    *pythia.TraceSet
	err   error

	// sess counts open sessions on this tenant server-wide (parked sessions
	// included) — the per-tenant admission-control input.
	sess atomic.Int64

	// qos is the tenant's shared event budget, created lazily by
	// Server.tenantBucket when per-tenant budgets are configured.
	qosOnce sync.Once
	qos     *cluster.TokenBucket

	mu      sync.Mutex
	oracles map[*pythia.Oracle]struct{}
}

func newStore(dir string) *store {
	s := &store{dir: dir}
	for i := range s.shards {
		s.shards[i].tenants = make(map[string]*tenant)
	}
	return s
}

// sanitizeTenant validates a tenant name as a bare file stem: no path
// separators, no traversal, no hidden-file prefix.
func sanitizeTenant(name string) error {
	if name == "" || len(name) > 255 || name[0] == '.' {
		return errBadTenant
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.', c == '_', c == '-':
		default:
			return errBadTenant
		}
	}
	if strings.Contains(name, "..") {
		return errBadTenant
	}
	return nil
}

func (s *store) shardOf(name string) *storeShard {
	// Inline FNV-1a over the tenant name.
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return &s.shards[h%storeShards]
}

// Acquire returns the loaded tenant, loading dir/<name>.pythia on first
// use. Concurrent acquirers of a loading tenant wait on the same load.
// Every successful OR failed Acquire must be paired with a Release.
func (s *store) Acquire(name string) (*tenant, error) {
	if err := sanitizeTenant(name); err != nil {
		return nil, err
	}
	sh := s.shardOf(name)
	sh.mu.Lock()
	t := sh.tenants[name]
	loader := false
	if t == nil {
		t = &tenant{
			name:    name,
			ready:   make(chan struct{}),
			oracles: make(map[*pythia.Oracle]struct{}),
		}
		sh.tenants[name] = t
		loader = true
	}
	t.refs++
	sh.mu.Unlock()

	if loader {
		ts, err := pythia.LoadTraceSet(filepath.Join(s.dir, name+".pythia"))
		t.ts, t.err = ts, err
		close(t.ready)
	}
	<-t.ready
	if t.err != nil {
		s.Release(t)
		return nil, fmt.Errorf("server: tenant %q: %w", name, t.err)
	}
	return t, nil
}

// Release drops one reference; the tenant unloads at zero. A failed-load
// tenant also leaves the map at zero, so a later Acquire retries the disk.
func (s *store) Release(t *tenant) {
	sh := s.shardOf(t.name)
	sh.mu.Lock()
	t.refs--
	if t.refs == 0 && sh.tenants[t.name] == t {
		delete(sh.tenants, t.name)
	}
	sh.mu.Unlock()
}

// register adds a live oracle to the tenant's health roster.
func (t *tenant) register(o *pythia.Oracle) {
	t.mu.Lock()
	t.oracles[o] = struct{}{}
	t.mu.Unlock()
}

// unregister removes a closed connection's oracle from the roster.
func (t *tenant) unregister(o *pythia.Oracle) {
	t.mu.Lock()
	delete(t.oracles, o)
	t.mu.Unlock()
}

// healthInfo folds the degradation state of every live oracle serving this
// tenant into one wire report: the worst state wins (Degraded dominates,
// then Quarantined), counters sum, and the first non-empty cause is kept.
func (t *tenant) healthInfo() wire.HealthInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	var hi wire.HealthInfo
	for o := range t.oracles {
		foldHealth(&hi, o.Health())
	}
	return hi
}

// foldHealth merges one oracle's health snapshot into an aggregate.
func foldHealth(hi *wire.HealthInfo, h pythia.Health) {
	hi.Oracles++
	hi.PanicsContained += h.PanicsContained
	hi.BudgetBreaches += h.BudgetBreaches
	hi.QuarantinedThreads += h.QuarantinedThreads
	hi.CheckpointFailures += h.CheckpointFailures
	hi.Promotions += h.Promotions
	hi.Rollbacks += h.Rollbacks
	st := stateToWire(h.State)
	if worseState(st, hi.State) {
		hi.State = st
	}
	if hi.Cause == "" && h.Cause != "" {
		hi.Cause = h.Cause
	}
}

// stateToWire maps a core degradation state onto its wire encoding.
func stateToWire(st pythia.State) uint8 {
	switch st {
	case pythia.Degraded:
		return wire.StateDegraded
	case pythia.Quarantined:
		return wire.StateQuarantined
	default:
		return wire.StateHealthy
	}
}

// worseState reports whether a dominates b in the degradation order
// Degraded > Quarantined > Healthy (same precedence as core.Health).
func worseState(a, b uint8) bool {
	rank := func(s uint8) int {
		switch s {
		case wire.StateDegraded:
			return 2
		case wire.StateQuarantined:
			return 1
		default:
			return 0
		}
	}
	return rank(a) > rank(b)
}

// healthOf reports the aggregate health of one loaded tenant; ok is false
// when the tenant is not currently loaded.
func (s *store) healthOf(name string) (wire.HealthInfo, bool) {
	if err := sanitizeTenant(name); err != nil {
		return wire.HealthInfo{}, false
	}
	sh := s.shardOf(name)
	sh.mu.Lock()
	t := sh.tenants[name]
	sh.mu.Unlock()
	if t == nil {
		return wire.HealthInfo{}, false
	}
	select {
	case <-t.ready:
	default:
		// Still loading: report as present but with no oracles yet.
		return wire.HealthInfo{}, true
	}
	if t.err != nil {
		return wire.HealthInfo{}, false
	}
	return t.healthInfo(), true
}

// serverHealth folds every loaded tenant into one server-wide report.
func (s *store) serverHealth() wire.HealthInfo {
	var hi wire.HealthInfo
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		tenants := make([]*tenant, 0, len(sh.tenants))
		for _, t := range sh.tenants {
			tenants = append(tenants, t)
		}
		sh.mu.Unlock()
		for _, t := range tenants {
			select {
			case <-t.ready:
			default:
				continue
			}
			if t.err != nil {
				continue
			}
			th := t.healthInfo()
			hi.Oracles += th.Oracles
			hi.PanicsContained += th.PanicsContained
			hi.BudgetBreaches += th.BudgetBreaches
			hi.QuarantinedThreads += th.QuarantinedThreads
			hi.CheckpointFailures += th.CheckpointFailures
			hi.Promotions += th.Promotions
			hi.Rollbacks += th.Rollbacks
			if worseState(th.State, hi.State) {
				hi.State = th.State
			}
			if hi.Cause == "" && th.Cause != "" {
				hi.Cause = th.Cause
			}
		}
	}
	return hi
}

// isNotExist reports whether a tenant load failure means "no such trace"
// (as opposed to a corrupt or unreadable one).
func isNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist) || errors.Is(err, errBadTenant)
}
