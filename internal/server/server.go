// Package server is pythiad's daemon core: a TCP server that multiplexes
// remote client sessions onto in-process pythia oracles.
//
// Each accepted connection is owned by one goroutine, which owns every
// session opened on it — preserving the library's single-submitter Thread
// contract without per-event locking. Tenants (named traces from the trace
// directory) are loaded lazily into a sharded, refcounted store and shared
// read-only across connections; each connection builds its own predicting
// oracle per tenant, so one client's divergence or contained panic degrades
// only that client's predictions while Health aggregation still surfaces it.
//
// The server fails open under pressure: past MaxConns new connections are
// refused with an Error frame, past MaxSessions new sessions are refused
// with an Error frame, and draining refuses new sessions — existing
// sessions keep being answered in every case. Shutdown reuses the
// checkpointer's drain discipline: stop intake, give in-flight work a
// bounded window, then force the stragglers.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
	"repro/pythia"
)

// Defaults for Config zero values.
const (
	DefaultMaxConns     = 256
	DefaultMaxSessions  = 4096
	DefaultDrainTimeout = 5 * time.Second
	DefaultResumeWindow = 15 * time.Second
	DefaultMaxParked    = 64
)

// Config configures a Server. The zero value serves the current directory
// with default limits.
type Config struct {
	// TraceDir is the directory of <tenant>.pythia trace files.
	TraceDir string
	// Predict tunes every per-connection predicting oracle.
	Predict pythia.Config
	// Learn, when non-nil, turns every per-connection oracle into an
	// online-learning one under the given lifecycle policy: the loaded trace
	// keeps serving while the client's live stream is shadow-recorded, with
	// scored promotion and automatic rollback. The policy's journal Dir is
	// ignored — per-connection oracles would collide on a shared journal, so
	// server-side generations are kept in memory.
	Learn *pythia.LearnPolicy
	// MaxConns caps concurrent connections; excess connects are refused
	// with CodeConnLimit. 0 means DefaultMaxConns, negative means no cap.
	MaxConns int
	// MaxSessions caps concurrent open sessions server-wide; excess opens
	// are refused with CodeSessionLimit while the connection stays usable.
	// 0 means DefaultMaxSessions, negative means no cap.
	MaxSessions int
	// DrainTimeout bounds Shutdown: connections still busy after the
	// window are force-closed. 0 means DefaultDrainTimeout.
	DrainTimeout time.Duration
	// ResumeWindow is how long a dropped connection's sessions stay parked
	// awaiting a TResume with the connection's token. 0 means
	// DefaultResumeWindow, negative disables session resume entirely.
	ResumeWindow time.Duration
	// Keepalive, when positive, reaps connections that send no frame for
	// the given window. Clients on the shared-memory tier (which submits
	// without socket frames) must heartbeat within it.
	Keepalive time.Duration
	// MaxParked caps concurrently parked connections awaiting resume;
	// beyond it a dropped connection releases immediately. 0 means
	// DefaultMaxParked, negative means no cap.
	MaxParked int
	// MaxSessionsPerTenant caps open sessions per tenant; excess opens are
	// refused with CodeRetryLater (non-fatal, retry-after hint attached).
	// 0 means unlimited.
	MaxSessionsPerTenant int
	// ShedSessions, when positive, sheds low-value work once the open
	// session count exceeds it: speculative PredictSequence queries get
	// CodeRetryLater while Submit acks, PredictAt, and Health always serve.
	ShedSessions int
	// TenantEventsPerSec, when positive, gives every tenant a token-bucket
	// event budget refilling at this rate. Submits charge it (never
	// refused — they are one-way frames); predictions and session opens
	// are gated on it and refused with CodeRetryLater plus a retry-after
	// hint once a tenant has overdrafted, so one hot tenant cannot starve
	// a daemon. 0 disables per-tenant budgets.
	TenantEventsPerSec int64
	// TenantBurst caps a tenant's budget balance. 0 means one second of
	// slack (TenantEventsPerSec).
	TenantBurst int64
	// PaceEvents, when positive, bounds the daemon's aggregate admitted
	// Submit rate (events/second) by stalling connection goroutines that
	// overdraft the shared pacing bucket. Used by the cluster scaling
	// bench to model per-node capacity; 0 (the default) disables pacing.
	PaceEvents int64
	// Logf, when set, receives connection-lifecycle diagnostics. It must
	// be safe for concurrent use (log.Printf is).
	Logf func(format string, args ...any)
}

// Server is a pythiad daemon core. Create with New, run with Serve,
// stop with Shutdown.
type Server struct {
	cfg Config
	st  *store

	mu    sync.Mutex
	lns   []net.Listener
	conns map[*conn]struct{}

	draining atomic.Bool
	sessions atomic.Int64 // open sessions, server-wide
	wg       sync.WaitGroup
	drainOne sync.Once

	parkMu sync.Mutex
	parked map[uint64]*parkedConn // resume token -> parked sessions

	// Cluster state (see cluster.go). clus is nil on a non-clustered
	// daemon; clusMu serializes epoch adoption, sweepMu serializes
	// migration/replication sweeps, pace is the optional daemon-wide
	// Submit pacing bucket.
	clusMu  sync.Mutex
	clus    atomic.Pointer[clusterState]
	sweepMu sync.Mutex
	pace    *cluster.TokenBucket
}

// New returns a server over cfg.TraceDir. It does not listen yet.
func New(cfg Config) *Server {
	if cfg.MaxConns == 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.ResumeWindow == 0 {
		cfg.ResumeWindow = DefaultResumeWindow
	}
	if cfg.MaxParked == 0 {
		cfg.MaxParked = DefaultMaxParked
	}
	s := &Server{
		cfg:    cfg,
		st:     newStore(cfg.TraceDir),
		conns:  make(map[*conn]struct{}),
		parked: make(map[uint64]*parkedConn),
	}
	if cfg.PaceEvents > 0 {
		// 100ms of burst keeps batches smooth without letting the rate drift.
		burst := cfg.PaceEvents / 10
		s.pace = cluster.NewTokenBucket(cfg.PaceEvents, burst, time.Now().UnixNano())
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on ln until Shutdown. It returns nil when the
// listener was closed by Shutdown, the accept error otherwise. A server may
// Serve several listeners concurrently (one goroutine each) — pythiad binds
// a TCP and a unix listener onto the same Server this way.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.accept(nc)
	}
}

// accept admits or refuses one fresh connection under the connection cap.
// Admission — the drain check, conns registration, and wg.Add — happens
// atomically under s.mu, the same mutex drain holds while it flips the
// flag and snapshots s.conns. Either this connection is admitted before
// the snapshot (so drain deadlines and wg.Wait cover it), or it observes
// draining and is refused; it can never slip between wg.Wait and the
// force-close sweep.
func (s *Server) accept(nc net.Conn) {
	c := newConn(s, nc)
	s.mu.Lock()
	draining := s.draining.Load()
	over := s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns
	admitted := !draining && !over
	if admitted {
		s.conns[c] = struct{}{}
		s.wg.Add(1)
	}
	s.mu.Unlock()
	if !admitted {
		// Refuse, never stall: one Error frame, then close. The handshake
		// is skipped on purpose — a refused client must not wait for it.
		code, msg := wire.CodeConnLimit, "connection limit reached"
		if draining {
			code, msg = wire.CodeDraining, "server draining"
		}
		c.refuse(code, msg)
		return
	}
	go func() {
		defer s.wg.Done()
		c.serve()
		s.dropConn(c)
	}()
}

func (s *Server) dropConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Shutdown drains the server: the listener closes, new sessions are
// refused with CodeDraining, requests already in flight (or arriving
// before the drain deadline) are still answered, and connections that
// outlive the drain window are force-closed. It returns once every
// connection goroutine has exited.
func (s *Server) Shutdown() error {
	var err error
	s.drainOne.Do(func() { err = s.drain() })
	return err
}

func (s *Server) drain() error {
	s.mu.Lock()
	// The flag flips under s.mu so it serializes with accept's admission:
	// every connection already in s.conns gets a drain deadline below, and
	// no new one can be admitted after this snapshot.
	s.draining.Store(true)
	lns := s.lns
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for c := range s.conns {
		// An expired read deadline unblocks the connection goroutine's
		// blocking read; frames that arrive before it are still served.
		if derr := c.nc.SetReadDeadline(deadline); derr != nil {
			s.logf("pythiad: drain deadline on %s: %v", c.nc.RemoteAddr(), derr)
		}
	}
	s.mu.Unlock()
	for _, ln := range lns {
		if cerr := ln.Close(); cerr != nil {
			s.logf("pythiad: closing listener %s: %v", ln.Addr(), cerr)
		}
	}
	// Parked sessions will never be resumed on a draining server: release
	// them now so their tenants (and the session budget) drain too.
	s.sweepParked()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	forced := 0
	select {
	case <-done:
	case <-time.After(time.Until(deadline) + time.Second):
		s.mu.Lock()
		for c := range s.conns {
			forced++
			if cerr := c.nc.Close(); cerr != nil {
				s.logf("pythiad: force-closing %s: %v", c.nc.RemoteAddr(), cerr)
			}
		}
		s.mu.Unlock()
		<-done
	}
	if forced > 0 {
		return fmt.Errorf("server: drain timeout: force-closed %d connections", forced)
	}
	return nil
}

// Sessions reports the number of currently open sessions (for tests and
// operator diagnostics).
func (s *Server) Sessions() int64 { return s.sessions.Load() }

// protoErr is a protocol-level failure: an Error frame worth of cause plus
// whether the connection can continue afterwards. Request/response pairing
// survives a non-fatal protoErr because the Error frame IS the response to
// the failing request; errors on one-way frames are always fatal.
type protoErr struct {
	code    wire.Code
	msg     string
	fatal   bool
	retryMs uint32 // retry-after hint, encoded when nonzero (load shedding)
}

func (e *protoErr) Error() string { return fmt.Sprintf("%s: %s", e.code, e.msg) }

func badFrame(msg string) *protoErr {
	return &protoErr{code: wire.CodeBadFrame, msg: msg, fatal: true}
}

// sessKey identifies one (tenant, thread) session on a connection.
type sessKey struct {
	tenant string
	tid    int32
}

// session is one open session slot. th is nil for meta sessions (tid < 0),
// which exist to pin a tenant and fetch its event table. applied counts
// events fed into the session since it opened; it lives behind a pointer so
// the count survives sessions-slice growth and is shared with the shm pump
// (both writers are serialized by the ring lock for ring-bound sessions).
type session struct {
	th      *pythia.Thread
	ct      *connTenant
	open    bool
	applied *uint64
}

// connTenant is this connection's handle on one tenant: the shared store
// entry plus the connection-private predicting oracle built over it. qos
// caches the tenant's shared event budget (nil when budgets are off) so
// the hot path never touches the store.
type connTenant struct {
	t      *tenant
	oracle *pythia.Oracle
	qos    *cluster.TokenBucket
}

// conn serves one client connection. All fields are owned by the single
// connection goroutine; the server touches only nc (deadlines, force-close).
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	buf      []byte // frame read buffer, reused across frames
	out      []byte // payload encode buffer, reused across responses
	sessions []session
	byKey    map[sessKey]uint32
	tenants  map[string]*connTenant

	// Shared-memory transport state (nil until ShmSetup succeeds). ringOf
	// maps a session id to its bound ring index; both are owned by the conn
	// goroutine, the rings themselves are shared with the pump under
	// per-ring mutexes (see shm.go).
	shm    *connShm
	ringOf map[uint32]int

	// resumeToken is the token granted at Hello time (0 when the client did
	// not ask or resume is disabled). While nonzero, teardown parks the
	// connection's sessions instead of releasing them (see park.go).
	resumeToken uint64
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:     s,
		nc:      nc,
		br:      bufio.NewReader(nc),
		bw:      bufio.NewWriter(nc),
		buf:     make([]byte, 0, 4096),
		out:     make([]byte, 0, 1024),
		byKey:   make(map[sessKey]uint32),
		tenants: make(map[string]*connTenant),
	}
}

// refuse sends one Error frame to an unadmitted connection and closes it.
func (c *conn) refuse(code wire.Code, msg string) {
	if err := c.nc.SetWriteDeadline(time.Now().Add(2 * time.Second)); err == nil {
		c.out = wire.AppendError(c.out[:0], code, msg)
		if werr := wire.WriteFrame(c.bw, wire.TError, c.out); werr == nil {
			if ferr := c.bw.Flush(); ferr != nil {
				c.srv.logf("pythiad: refusing %s: %v", c.nc.RemoteAddr(), ferr)
			}
		}
	}
	if err := c.nc.Close(); err != nil {
		c.srv.logf("pythiad: closing refused %s: %v", c.nc.RemoteAddr(), err)
	}
}

// serve runs the connection to completion: handshake, then frames until
// EOF, a fatal protocol error, the keepalive window, or the drain deadline.
func (c *conn) serve() {
	defer c.teardown()
	c.armKeepalive()
	if err := c.handshake(); err != nil {
		c.finishWith(err)
		return
	}
	for {
		t, payload, err := wire.ReadFrame(c.br, &c.buf)
		if err != nil {
			c.finishWith(nil) // EOF, deadline, or torn frame: nothing to answer
			return
		}
		if err := c.handleFrame(t, payload); err != nil {
			var pe *protoErr
			if errors.As(err, &pe) {
				c.writeError(pe)
				if !pe.fatal {
					continue
				}
			}
			c.finishWith(nil)
			return
		}
		// Write batching: flush only when no further request is already
		// buffered, so a pipelined burst gets one flush, not N. The idle
		// point is also where the keepalive window restarts.
		if c.br.Buffered() == 0 {
			if err := c.bw.Flush(); err != nil {
				c.finishWith(nil)
				return
			}
			c.armKeepalive()
		}
	}
}

// armKeepalive restarts the read-side keepalive window. A draining server
// leaves the drain deadline alone so keepalive cannot extend it.
func (c *conn) armKeepalive() {
	if c.srv.cfg.Keepalive <= 0 || c.srv.draining.Load() {
		return
	}
	if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.Keepalive)); err != nil {
		c.srv.logf("pythiad: keepalive deadline on %s: %v", c.nc.RemoteAddr(), err)
	}
}

// handshake requires the first frame to be a version-matched Hello. A
// client asking for resume capability gets a fresh token in the HelloOK —
// the token it may present over a future connection to adopt the sessions
// this connection leaves behind.
func (c *conn) handshake() error {
	t, payload, err := wire.ReadFrame(c.br, &c.buf)
	if err != nil {
		return nil // connected and left: not an event worth a frame
	}
	if t != wire.THello {
		return badFrame("expected Hello")
	}
	v, flags, err := wire.ParseHello(payload)
	if err != nil {
		return badFrame(err.Error())
	}
	if v != wire.Version {
		return &protoErr{
			code:  wire.CodeBadVersion,
			msg:   fmt.Sprintf("server speaks version %d, client sent %d", wire.Version, v),
			fatal: true,
		}
	}
	window := c.srv.cfg.ResumeWindow
	if flags&wire.HelloFlagResume != 0 && window > 0 && !c.srv.draining.Load() {
		token, terr := newResumeToken()
		if terr != nil {
			c.srv.logf("pythiad: resume token for %s: %v", c.nc.RemoteAddr(), terr)
		} else {
			c.resumeToken = token
		}
	}
	if c.resumeToken != 0 {
		c.out = wire.AppendHelloOKResume(c.out[:0], c.resumeToken, uint32(window/time.Millisecond))
	} else {
		c.out = wire.AppendHelloOK(c.out[:0])
	}
	if err := wire.WriteFrame(c.bw, wire.THelloOK, c.out); err != nil {
		return err
	}
	return c.bw.Flush()
}

// writeError answers (or terminates) a request with an Error frame.
func (c *conn) writeError(pe *protoErr) {
	if pe.retryMs > 0 {
		c.out = wire.AppendErrorRetry(c.out[:0], pe.code, pe.msg, pe.retryMs)
	} else {
		c.out = wire.AppendError(c.out[:0], pe.code, pe.msg)
	}
	if err := wire.WriteFrame(c.bw, wire.TError, c.out); err != nil {
		return
	}
	if err := c.bw.Flush(); err != nil {
		c.srv.logf("pythiad: error frame to %s: %v", c.nc.RemoteAddr(), err)
	}
}

// finishWith flushes and closes after the read loop ends.
func (c *conn) finishWith(err error) {
	if err != nil {
		var pe *protoErr
		if errors.As(err, &pe) {
			c.writeError(pe)
		}
	}
	if ferr := c.bw.Flush(); ferr != nil {
		c.srv.logf("pythiad: final flush to %s: %v", c.nc.RemoteAddr(), ferr)
	}
	if cerr := c.nc.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
		c.srv.logf("pythiad: closing %s: %v", c.nc.RemoteAddr(), cerr)
	}
}

// teardown returns every resource the connection holds: open-session
// budget, oracle registrations, tenant references, and the shm pump and
// segment mapping when the connection negotiated shared memory. The shm
// teardown runs first — its final ring drain makes the applied counters
// exact — then a connection holding a resume token parks its sessions for
// the resume window instead of releasing them.
func (c *conn) teardown() {
	c.shmTeardown()
	if c.resumeToken != 0 && c.srv.tryPark(c) {
		return
	}
	c.releaseSessions()
}

// releaseSessions returns the session budget, per-tenant counts, oracle
// registrations, and tenant references. Called from teardown (no park) and
// from the park table when a parked connection expires unresumed.
func (c *conn) releaseSessions() {
	releaseParked(c.srv, c.sessions, c.tenants)
}

// handleFrame dispatches one request frame.
// pythia:hotpath — per-request on the serving path; the Submit and
// PredictAt arms must not allocate.
func (c *conn) handleFrame(t wire.Type, payload []byte) error {
	switch t {
	case wire.TSubmit:
		sid, id, err := wire.ParseSubmit(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		th, perr := c.threadOf(sid)
		if perr != nil {
			return perr
		}
		release, perr := c.enterSession(sid)
		if perr != nil {
			return perr
		}
		th.Submit(pythia.ID(id))
		ap := c.sessions[sid].applied
		*ap++
		release()
		c.chargeEvents(sid, 1)
		return nil
	case wire.TSubmitBatch:
		sid, batch, err := wire.ParseSubmitBatch(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		th, perr := c.threadOf(sid)
		if perr != nil {
			return perr
		}
		release, perr := c.enterSession(sid)
		if perr != nil {
			return perr
		}
		for i, n := 0, batch.Len(); i < n; i++ {
			th.Submit(pythia.ID(batch.At(i)))
		}
		ap := c.sessions[sid].applied
		*ap += uint64(batch.Len())
		release()
		c.chargeEvents(sid, int64(batch.Len()))
		return nil
	case wire.TPredictAt:
		sid, distance, err := wire.ParsePredictAt(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		th, perr := c.threadOf(sid)
		if perr != nil {
			return perr
		}
		if perr := gateTenant(c.sessions[sid].ct.qos); perr != nil {
			return perr
		}
		release, perr := c.enterSession(sid)
		if perr != nil {
			return perr
		}
		pr, ok := th.PredictAt(distance)
		release()
		c.out = wire.AppendPrediction(c.out[:0], pr, ok)
		return wire.WriteFrame(c.bw, wire.TPrediction, c.out)
	case wire.TPredictSequence:
		sid, n, err := wire.ParsePredictSequence(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		th, perr := c.threadOf(sid)
		if perr != nil {
			return perr
		}
		if perr := gateTenant(c.sessions[sid].ct.qos); perr != nil {
			return perr
		}
		// Load shedding drops the lowest-value work first: speculative
		// multi-step sequence queries. Submits are never refused (losing
		// events corrupts the model) and single PredictAt stays cheap.
		if shed := c.srv.cfg.ShedSessions; shed > 0 && c.srv.sessions.Load() > int64(shed) {
			return &protoErr{
				code:    wire.CodeRetryLater,
				msg:     "overloaded; sequence predictions shed",
				retryMs: 100,
			}
		}
		// n comes off the wire: clamp it to what one response frame can
		// carry, so an 8-byte request cannot demand a multi-GiB prediction
		// buffer (the core allocates the full horizon up front). Shorter-
		// than-asked results are already in the method's contract — the
		// in-process oracle truncates at the end of the reference trace.
		if n < 0 {
			n = 0
		} else if n > wire.MaxPredictions {
			n = wire.MaxPredictions
		}
		release, perr := c.enterSession(sid)
		if perr != nil {
			return perr
		}
		preds := th.PredictSequence(n)
		release()
		c.out = wire.AppendPredictions(c.out[:0], preds)
		return wire.WriteFrame(c.bw, wire.TPredictions, c.out)
	case wire.TOpenSession:
		o, err := wire.ParseOpenSession(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.openSession(o)
	case wire.TCloseSession:
		sid, err := wire.ParseCloseSession(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.closeSession(sid)
	case wire.THealth:
		tenant, err := wire.ParseHealth(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.health(tenant)
	case wire.TShmSetup:
		ss, err := wire.ParseShmSetup(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.shmSetup(ss)
	case wire.TShmBind:
		sid, ring, err := wire.ParseShmBind(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.shmBind(sid, ring)
	case wire.TSubscribe:
		sub, err := wire.ParseSubscribe(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.shmSubscribe(sub)
	case wire.TResume:
		token, err := wire.ParseResume(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.resume(token)
	case wire.TReplay:
		sid, base, batch, err := wire.ParseReplay(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.replay(sid, base, batch)
	case wire.THeartbeat:
		if err := wire.ParseHeartbeat(payload); err != nil {
			return badFrame(err.Error())
		}
		return wire.WriteFrame(c.bw, wire.THeartbeatAck, nil)
	case wire.TDetach:
		if err := wire.ParseDetach(payload); err != nil {
			return badFrame(err.Error())
		}
		// One-way: the client is closing for good; never park its sessions.
		c.resumeToken = 0
		return nil
	case wire.TModelInfo:
		tenant, err := wire.ParseModelInfo(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.modelInfo(tenant)
	case wire.TPromote:
		tenant, err := wire.ParsePromote(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.promote(tenant)
	case wire.TRollback:
		tenant, err := wire.ParseRollback(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.rollback(tenant)
	case wire.TShardMap:
		epoch, err := wire.ParseShardMap(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.shardMap(epoch)
	case wire.TFetchModel:
		tenant, err := wire.ParseFetchModel(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.fetchModel(tenant)
	case wire.TOfferModel:
		om, err := wire.ParseOfferModel(payload)
		if err != nil {
			return badFrame(err.Error())
		}
		return c.offerModel(om)
	case wire.THello:
		return badFrame("duplicate Hello")
	default:
		return badFrameType(t)
	}
}

// badFrameType reports an unexpected frame type. Split from handleFrame so
// the message formatting stays off the annotated hot path — it runs only on
// a fatal protocol error, after which the connection closes.
func badFrameType(t wire.Type) *protoErr {
	return badFrame("unexpected frame type " + t.String())
}

// threadOf resolves a session id to its oracle thread. Failures are fatal:
// they corrupt request/response pairing (the id may belong to a one-way
// Submit), so the connection cannot safely continue.
// pythia:hotpath — per-request on the serving path.
func (c *conn) threadOf(sid uint32) (*pythia.Thread, *protoErr) {
	if int(sid) >= len(c.sessions) || !c.sessions[sid].open {
		return nil, errUnknownSession
	}
	th := c.sessions[sid].th
	if th == nil {
		return nil, errMetaSession
	}
	return th, nil
}

var (
	errUnknownSession = &protoErr{code: wire.CodeUnknownSession, msg: "no such session on this connection", fatal: true}
	errMetaSession    = &protoErr{code: wire.CodeBadFrame, msg: "submit/predict on a meta session", fatal: true}
)

// openSession admits one session under the drain flag and session budget,
// then binds it to a (tenant, thread) oracle.
func (c *conn) openSession(o wire.OpenSession) error {
	if c.srv.draining.Load() {
		return &protoErr{code: wire.CodeDraining, msg: "server draining; no new sessions"}
	}
	// Ownership is enforced at open time only: a clustered daemon refuses
	// tenants outside its assignment (non-fatal — the client re-fetches the
	// shard map and re-routes), while sessions already open stay put across
	// epoch changes.
	if perr := c.checkShard(o.Tenant); perr != nil {
		return perr
	}
	if max := int64(c.srv.cfg.MaxSessions); max > 0 && c.srv.sessions.Load() >= max {
		return &protoErr{code: wire.CodeSessionLimit, msg: "session limit reached; retry later"}
	}
	key := sessKey{tenant: o.Tenant, tid: o.TID}
	if o.TID >= 0 {
		if old, dup := c.byKey[key]; dup {
			// Last open wins. A client whose OpenSession (or CloseSession)
			// response was lost to the network resumes with a stale view in
			// which this thread is unopened; refusing the reopen would wedge
			// it permanently. The orphaned slot can hold no unacknowledged
			// client state — the client never learned its id — so retiring
			// it and letting the shadow replay rebuild the stream converges.
			if perr := c.retireSession(old); perr != nil {
				return perr
			}
		}
	}
	ct, perr := c.tenantOf(o.Tenant)
	if perr != nil {
		return perr
	}
	// Per-tenant admission: one tenant's fan-out cannot crowd out the rest
	// of the server. Non-fatal with a retry hint — the client's session
	// stays unopened, the connection stays usable.
	if max := int64(c.srv.cfg.MaxSessionsPerTenant); max > 0 && ct.t.sess.Load() >= max {
		return &protoErr{
			code:    wire.CodeRetryLater,
			msg:     fmt.Sprintf("tenant %q at its session limit; retry later", o.Tenant),
			retryMs: 250,
		}
	}
	// A tenant deep in event-budget overdraft cannot open new sessions
	// either — fanning out is how a hot tenant would dodge its budget.
	if perr := gateTenant(ct.qos); perr != nil {
		return perr
	}

	var th *pythia.Thread
	hasPredictor := false
	if o.TID >= 0 {
		th = ct.oracle.Thread(o.TID)
		hasPredictor = ct.t.ts.Trace(o.TID) != nil
		if o.Flags&wire.FlagStartAtBeginning != 0 {
			th.StartAtBeginning()
		}
	}

	sid := uint32(len(c.sessions))
	c.sessions = append(c.sessions, session{th: th, ct: ct, open: true, applied: new(uint64)})
	if o.TID >= 0 {
		c.byKey[key] = sid
	}
	c.srv.sessions.Add(1)
	ct.t.sess.Add(1)

	so := wire.SessionOpened{
		Session:      sid,
		HasPredictor: hasPredictor,
		State:        stateToWire(ct.oracle.Health().State),
	}
	if o.Flags&wire.FlagWantEvents != 0 {
		so.Events = ct.t.ts.Events
		if so.Events == nil {
			so.Events = []string{}
		}
	}
	c.out = wire.AppendSessionOpened(c.out[:0], so)
	return wire.WriteFrame(c.bw, wire.TSessionOpened, c.out)
}

// tenantOf returns this connection's oracle for a tenant, acquiring the
// shared trace and building the oracle on first use.
func (c *conn) tenantOf(name string) (*connTenant, *protoErr) {
	if ct, ok := c.tenants[name]; ok {
		return ct, nil
	}
	t, err := c.srv.st.Acquire(name)
	if err != nil {
		if isNotExist(err) {
			return nil, &protoErr{code: wire.CodeUnknownTenant, msg: err.Error()}
		}
		return nil, &protoErr{code: wire.CodeInternal, msg: err.Error()}
	}
	var popts []pythia.PredictOption
	if lp := c.srv.cfg.Learn; lp != nil {
		pol := *lp
		pol.Dir = "" // per-connection oracles: in-memory generations only
		popts = append(popts, pythia.WithOnlineLearning(pol))
	}
	oracle, err := pythia.NewPredictOracle(t.ts, c.srv.cfg.Predict, popts...)
	if err != nil {
		c.srv.st.Release(t)
		return nil, &protoErr{code: wire.CodeInternal, msg: err.Error()}
	}
	t.register(oracle)
	ct := &connTenant{t: t, oracle: oracle, qos: c.srv.tenantBucket(t)}
	c.tenants[name] = ct
	return ct, nil
}

// closeSession retires one session slot. The tenant handle stays with the
// connection (other sessions may share it); it is released at teardown.
func (c *conn) closeSession(sid uint32) error {
	if int(sid) >= len(c.sessions) || !c.sessions[sid].open {
		return errUnknownSession
	}
	if perr := c.retireSession(sid); perr != nil {
		return perr
	}
	c.out = wire.AppendSessionClosed(c.out[:0], sid)
	return wire.WriteFrame(c.bw, wire.TSessionClosed, c.out)
}

// retireSession releases one open session slot without answering the
// client: the budget and per-tenant counts are returned and the (tenant,
// thread) key freed for a fresh open. Shared by closeSession and the
// duplicate-open path.
func (c *conn) retireSession(sid uint32) *protoErr {
	// A ring-bound session drains its ring before closing, so no submitted
	// event is lost; the ring becomes rebindable.
	if perr := c.shmUnbind(sid); perr != nil {
		return perr
	}
	c.sessions[sid].open = false
	c.srv.sessions.Add(-1)
	c.sessions[sid].ct.t.sess.Add(-1)
	for key, id := range c.byKey {
		if id == sid {
			delete(c.byKey, key)
			break
		}
	}
	return nil
}

// modelInfo answers a ModelInfo request with this connection's lifecycle
// snapshot for the tenant (oracles are per-connection, so the generation
// numbers and counters describe this client's oracle).
func (c *conn) modelInfo(tenant string) error {
	ct, perr := c.tenantOf(tenant)
	if perr != nil {
		return perr
	}
	mi := ct.oracle.ModelInfo()
	wmi := wire.ModelInfo{
		Enabled:           mi.Enabled,
		State:             modelStateToWire(mi.State),
		ServingGeneration: mi.ServingGeneration,
		Promotions:        mi.Promotions,
		Rollbacks:         mi.Rollbacks,
		ShadowEpochs:      mi.ShadowEpochs,
		Retained:          mi.Retained,
	}
	c.out = wire.AppendModelInfoR(c.out[:0], wmi)
	return wire.WriteFrame(c.bw, wire.TModelInfoR, c.out)
}

// promote forces a promotion of the tenant's shadow model on this
// connection's oracle. Refusals (learning disabled, no candidate yet) are
// non-fatal CodeLifecycle errors.
func (c *conn) promote(tenant string) error {
	ct, perr := c.tenantOf(tenant)
	if perr != nil {
		return perr
	}
	gen, err := ct.oracle.Promote()
	if err != nil {
		return &protoErr{code: wire.CodeLifecycle, msg: err.Error()}
	}
	c.out = wire.AppendPromoted(c.out[:0], gen)
	return wire.WriteFrame(c.bw, wire.TPromoted, c.out)
}

// rollback forces a rollback to the previous generation on this
// connection's oracle.
func (c *conn) rollback(tenant string) error {
	ct, perr := c.tenantOf(tenant)
	if perr != nil {
		return perr
	}
	gen, err := ct.oracle.Rollback()
	if err != nil {
		return &protoErr{code: wire.CodeLifecycle, msg: err.Error()}
	}
	c.out = wire.AppendRolledBack(c.out[:0], gen)
	return wire.WriteFrame(c.bw, wire.TRolledBack, c.out)
}

// modelStateToWire maps a core lifecycle state string to its wire value.
func modelStateToWire(state string) uint8 {
	switch state {
	case "learning":
		return wire.ModelLearning
	case "watching":
		return wire.ModelWatching
	default:
		return wire.ModelFrozen
	}
}

// health answers a Health request for one tenant ("" = whole server).
func (c *conn) health(tenant string) error {
	var hi wire.HealthInfo
	if tenant == "" {
		hi = c.srv.st.serverHealth()
	} else {
		var ok bool
		hi, ok = c.srv.st.healthOf(tenant)
		if !ok {
			return &protoErr{code: wire.CodeUnknownTenant, msg: fmt.Sprintf("tenant %q not loaded", tenant)}
		}
	}
	c.out = wire.AppendHealthInfo(c.out[:0], hi)
	return wire.WriteFrame(c.bw, wire.THealthInfo, c.out)
}
