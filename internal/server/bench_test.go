package server

import (
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// nopConn is a no-op net.Conn for driving the frame handler in-memory:
// writes succeed and vanish, reads report a clean end of stream.
type nopConn struct{}

type nopAddr struct{}

func (nopAddr) Network() string { return "nop" }
func (nopAddr) String() string  { return "nop" }

func (nopConn) Read(b []byte) (int, error)         { return 0, net.ErrClosed }
func (nopConn) Write(b []byte) (int, error)        { return len(b), nil }
func (nopConn) Close() error                       { return nil }
func (nopConn) LocalAddr() net.Addr                { return nopAddr{} }
func (nopConn) RemoteAddr() net.Addr               { return nopAddr{} }
func (nopConn) SetDeadline(t time.Time) error      { return nil }
func (nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(t time.Time) error { return nil }

// benchConn builds a served connection over an in-memory transport with an
// open session on a synthetic repeating trace, plus the per-event Submit
// payloads of one pattern repetition.
func benchConn(tb testing.TB, reps int) (*conn, uint32, [][]byte) {
	tb.Helper()
	dir := tb.TempDir()
	names := synthTrace(tb, dir, "synth", reps)
	srv := New(Config{TraceDir: dir})
	c := newConn(srv, nopConn{})
	if err := c.handleFrame(wire.TOpenSession, wire.AppendOpenSession(nil, wire.OpenSession{
		TID: 0, Flags: wire.FlagStartAtBeginning, Tenant: "synth",
	})); err != nil {
		tb.Fatalf("opening session: %v", err)
	}
	sid := uint32(len(c.sessions) - 1)
	reg := make(map[string]int32)
	for i, name := range c.sessions[sid].ct.t.ts.Events {
		reg[name] = int32(i)
	}
	payloads := make([][]byte, len(names))
	for i, name := range names {
		payloads[i] = wire.AppendSubmit(nil, sid, reg[name])
	}
	return c, sid, payloads
}

// BenchmarkServeSubmit measures the steady-state per-request server path
// for the one-way Submit frame: parse, session dispatch, oracle Submit.
// The acceptance bar is 0 allocs/op.
func BenchmarkServeSubmit(b *testing.B) {
	const reps = 1 << 18
	c, sid, payloads := benchConn(b, reps)
	th := c.sessions[sid].th
	// Warm the prediction cache's window buffers so the timed region is
	// pure steady state.
	for i := 0; i < 1024; i++ {
		if err := c.handleFrame(wire.TSubmit, payloads[i%len(payloads)]); err != nil {
			b.Fatalf("warmup: %v", err)
		}
	}
	limit := reps*len(payloads) - 2048
	phase, submitted := 1024, 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if submitted >= limit {
			// The replay is nearing the end of the reference trace:
			// rewind (outside the timed region) so every measured Submit
			// is a mid-trace steady-state one.
			b.StopTimer()
			th.StartAtBeginning()
			phase, submitted = 0, 0
			b.StartTimer()
		}
		if err := c.handleFrame(wire.TSubmit, payloads[phase%len(payloads)]); err != nil {
			b.Fatal(err)
		}
		phase++
		submitted++
	}
}

// BenchmarkServePredictAt measures the request/response serving path: the
// prediction itself plus response encode into the write buffer.
func BenchmarkServePredictAt(b *testing.B) {
	c, sid, payloads := benchConn(b, 1<<12)
	for i := 0; i < 256; i++ {
		if err := c.handleFrame(wire.TSubmit, payloads[i%len(payloads)]); err != nil {
			b.Fatalf("warmup: %v", err)
		}
	}
	req := wire.AppendPredictAt(nil, sid, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.handleFrame(wire.TPredictAt, req); err != nil {
			b.Fatal(err)
		}
		// Keep the bufio writer from accumulating: it flushes to the
		// no-op transport.
		if c.bw.Buffered() > 1<<15 {
			if err := c.bw.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestServeSubmitZeroAlloc pins the acceptance criterion directly: the
// steady-state Submit serving path performs zero allocations per request.
func TestServeSubmitZeroAlloc(t *testing.T) {
	c, _, payloads := benchConn(t, 1<<13)
	for i := 0; i < 1024; i++ {
		if err := c.handleFrame(wire.TSubmit, payloads[i%len(payloads)]); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	phase := 1024
	allocs := testing.AllocsPerRun(2000, func() {
		if err := c.handleFrame(wire.TSubmit, payloads[phase%len(payloads)]); err != nil {
			t.Fatal(err)
		}
		phase++
	})
	if allocs != 0 {
		t.Fatalf("Submit serving path allocated %v/op in steady state, want 0", allocs)
	}
}

// TestServeSubmitBatchMatchesSubmit checks the batched one-way path feeds
// the oracle identically to per-event frames.
func TestServeSubmitBatchMatchesSubmit(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "synth", 128)
	srv := New(Config{TraceDir: dir})

	open := wire.AppendOpenSession(nil, wire.OpenSession{TID: 0, Flags: wire.FlagStartAtBeginning, Tenant: "synth"})

	single := newConn(srv, nopConn{})
	if err := single.handleFrame(wire.TOpenSession, open); err != nil {
		t.Fatalf("open: %v", err)
	}
	batched := newConn(srv, nopConn{})
	if err := batched.handleFrame(wire.TOpenSession, open); err != nil {
		t.Fatalf("open: %v", err)
	}

	reg := make(map[string]int32)
	for i, name := range single.sessions[0].ct.t.ts.Events {
		reg[name] = int32(i)
	}
	var ids []int32
	for i := 0; i < 37; i++ {
		ids = append(ids, reg[names[i%len(names)]])
	}
	for _, id := range ids {
		if err := single.handleFrame(wire.TSubmit, wire.AppendSubmit(nil, 0, id)); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	if err := batched.handleFrame(wire.TSubmitBatch, wire.AppendSubmitBatch(nil, 0, ids)); err != nil {
		t.Fatalf("batch: %v", err)
	}
	a, aok := single.sessions[0].th.PredictAt(1)
	b, bok := batched.sessions[0].th.PredictAt(1)
	if aok != bok || !samePrediction(a, b) {
		t.Fatalf("batched path diverged: %+v/%v vs %+v/%v", a, aok, b, bok)
	}
}
