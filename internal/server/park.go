package server

import (
	"crypto/rand"
	"encoding/binary"
	"time"

	"repro/internal/wire"
	"repro/pythia"
)

// Session resume. A connection that negotiated a resume token does not
// release its sessions when it dies — they are parked in the server's park
// table for the resume window, still counted against every budget. A fresh
// connection presenting the token as its first post-handshake frame adopts
// them, session ids intact, and learns each session's applied event counter
// so it can replay exactly its unacked tail; the replay dedup in
// conn.replay makes redelivery idempotent. Unresumed parks expire on a
// timer and release everything with the same accounting as a plain
// teardown.

// parkedConn is one dead connection's session state awaiting resume.
type parkedConn struct {
	sessions []session
	byKey    map[sessKey]uint32
	tenants  map[string]*connTenant
	timer    *time.Timer
}

// newResumeToken draws a nonzero random 64-bit token. Tokens gate session
// adoption, so they come from crypto/rand — a guessable token would let one
// tenant's client adopt another's sessions.
func newResumeToken() (uint64, error) {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0, err
		}
		if t := binary.BigEndian.Uint64(b[:]); t != 0 {
			return t, nil
		}
	}
}

// tryPark moves a dying connection's sessions into the park table. It
// refuses (caller releases instead) when the server is draining, nothing is
// open, or the park table is full.
func (s *Server) tryPark(c *conn) bool {
	open := 0
	for i := range c.sessions {
		if c.sessions[i].open {
			open++
		}
	}
	if open == 0 {
		return false
	}
	s.parkMu.Lock()
	if s.draining.Load() || (s.cfg.MaxParked > 0 && len(s.parked) >= s.cfg.MaxParked) {
		s.parkMu.Unlock()
		return false
	}
	token := c.resumeToken
	p := &parkedConn{sessions: c.sessions, byKey: c.byKey, tenants: c.tenants}
	p.timer = time.AfterFunc(s.cfg.ResumeWindow, func() { s.expirePark(token) })
	s.parked[token] = p
	s.parkMu.Unlock()
	return true
}

// unpark removes and returns the parked state for token, or nil. The expiry
// timer is stopped; if it already fired, the table entry is gone and the
// caller sees nil — expiry and adoption can never both release.
func (s *Server) unpark(token uint64) *parkedConn {
	s.parkMu.Lock()
	p := s.parked[token]
	if p != nil {
		p.timer.Stop()
		delete(s.parked, token)
	}
	s.parkMu.Unlock()
	return p
}

// expirePark releases a parked connection whose resume window lapsed.
func (s *Server) expirePark(token uint64) {
	s.parkMu.Lock()
	p := s.parked[token]
	delete(s.parked, token)
	s.parkMu.Unlock()
	if p != nil {
		releaseParked(s, p.sessions, p.tenants)
	}
}

// sweepParked releases every parked connection (drain path).
func (s *Server) sweepParked() {
	s.parkMu.Lock()
	parked := s.parked
	s.parked = make(map[uint64]*parkedConn)
	s.parkMu.Unlock()
	for _, p := range parked {
		p.timer.Stop()
		releaseParked(s, p.sessions, p.tenants)
	}
}

// releaseParked returns session budget, per-tenant counts, oracle
// registrations, and tenant references for one connection's session state —
// the shared accounting for teardown, park expiry, and the drain sweep.
func releaseParked(s *Server, sessions []session, tenants map[string]*connTenant) {
	for i := range sessions {
		if sessions[i].open {
			sessions[i].open = false
			s.sessions.Add(-1)
			sessions[i].ct.t.sess.Add(-1)
		}
	}
	for _, ct := range tenants {
		ct.t.unregister(ct.oracle)
		// A learning oracle runs a lifecycle manager goroutine; join it.
		// Frozen oracles make this a no-op.
		ct.oracle.Close()
		s.st.Release(ct.t)
	}
}

// resume handles TResume: adopt a parked connection's sessions. It must
// arrive before any session is opened on this connection — session ids are
// slice indexes, so adopting into a non-empty table would renumber them.
func (c *conn) resume(token uint64) error {
	if len(c.sessions) != 0 || len(c.tenants) != 0 {
		return badFrame("Resume after sessions were opened")
	}
	if c.srv.draining.Load() {
		return &protoErr{code: wire.CodeDraining, msg: "server draining; no resume"}
	}
	p := c.srv.unpark(token)
	if p == nil {
		return &protoErr{
			code: wire.CodeNoResume,
			msg:  "no parked sessions for this token (expired, resumed, or never granted)",
		}
	}
	c.sessions = p.sessions
	c.byKey = p.byKey
	c.tenants = p.tenants

	rs := make([]wire.ResumedSession, 0, len(c.sessions))
	for sid := range c.sessions {
		if c.sessions[sid].open {
			rs = append(rs, wire.ResumedSession{
				Session: uint32(sid),
				Applied: *c.sessions[sid].applied,
			})
		}
	}
	c.out = wire.AppendResumed(c.out[:0], rs)
	return wire.WriteFrame(c.bw, wire.TResumed, c.out)
}

// replay handles TReplay: apply the batch's events, skipping every sequence
// number at or below the session's applied counter. A client replaying its
// shadow buffer after resume may overlap what the server already applied;
// the counter makes redelivery exactly-once.
func (c *conn) replay(sid uint32, base uint64, batch wire.Batch) error {
	if base == 0 {
		return badFrame("Replay base must be 1-based")
	}
	th, perr := c.threadOf(sid)
	if perr != nil {
		return perr
	}
	release, perr := c.enterSession(sid)
	if perr != nil {
		return perr
	}
	ap := c.sessions[sid].applied
	for i, n := 0, batch.Len(); i < n; i++ {
		seq := base + uint64(i)
		if seq > *ap {
			th.Submit(pythia.ID(batch.At(i)))
			*ap = seq
		}
	}
	applied := *ap
	release()
	c.out = wire.AppendReplayed(c.out[:0], sid, applied)
	return wire.WriteFrame(c.bw, wire.TReplayed, c.out)
}
