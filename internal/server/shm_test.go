package server

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pythia"
	"repro/pythia/client"
)

// shmClient dials the unix listener with shared memory and fails the test
// if the shm tier did not engage.
func shmClient(t *testing.T, unixAddr, tenant string) *client.Oracle {
	t.Helper()
	o, err := client.Connect(unixAddr, tenant, client.Config{SharedMem: true})
	if err != nil {
		t.Fatalf("shm connect: %v", err)
	}
	t.Cleanup(func() {
		if err := o.Close(); err != nil {
			t.Errorf("closing shm oracle: %v", err)
		}
	})
	if got := o.Transport(); got != "shm" {
		t.Fatalf("negotiated transport %q, want shm", got)
	}
	return o
}

// TestSubmitShmZeroAlloc is the gating test for the acceptance criterion:
// the steady-state shm Submit path allocates nothing.
func TestSubmitShmZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 64)
	_, _, unixAddr := startServerTransports(t, Config{TraceDir: dir})
	o := shmClient(t, unixAddr, "synth")
	th := o.Thread(0)
	ids := make([]pythia.ID, 4)
	for i, n := range []string{"phase:a", "phase:b", "phase:c", "phase:d"} {
		ids[i] = o.Intern(n)
	}
	th.Submit(ids[0]) // first submit binds the ring
	if _, ok := th.PredictAt(1); !ok {
		t.Fatal("prediction unavailable after first submit")
	}

	i := 0
	allocs := testing.AllocsPerRun(5000, func() {
		th.Submit(ids[i&3])
		i++
	})
	if allocs != 0 {
		t.Fatalf("shm Submit allocates %v/op, want 0", allocs)
	}
	if h := o.Health(); h.State != pythia.Healthy {
		t.Fatalf("oracle degraded after zero-alloc run: %+v", h)
	}
}

// TestShmSubscriptionStreams checks the streaming-prediction mode end to
// end: Subscribe drains the ring and publishes synchronously, so the first
// Latest read is deterministic and must be bit-identical to an in-process
// oracle fed the same events.
func TestShmSubscriptionStreams(t *testing.T) {
	dir := t.TempDir()
	names := synthTrace(t, dir, "synth", 64)
	_, _, unixAddr := startServerTransports(t, Config{TraceDir: dir})
	o := shmClient(t, unixAddr, "synth")
	th := o.Thread(0)
	th.StartAtBeginning()

	// The same reference replayed in process.
	ts, err := pythia.LoadTraceSet(dir + "/synth.pythia")
	if err != nil {
		t.Fatal(err)
	}
	lo, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lth := lo.Thread(0)
	lth.StartAtBeginning()

	samePreds := func(got, want []pythia.Prediction) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !samePrediction(got[i], want[i]) {
				return false
			}
		}
		return true
	}

	const horizon = 4
	if _, ok := th.Latest(nil); ok {
		t.Fatal("Latest reported ok before Subscribe")
	}
	for i := 0; i < 6; i++ {
		th.Submit(o.Intern(names[i%len(names)]))
		lth.Submit(lo.Intern(names[i%len(names)]))
	}
	if err := th.Subscribe(horizon, 1); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	got, ok := th.Latest(nil)
	if !ok {
		t.Fatal("Latest not ok immediately after Subscribe")
	}
	want := lth.PredictSequence(horizon)
	if !samePreds(got, want) {
		t.Fatalf("initial predictions: shm %+v local %+v", got, want)
	}

	// After more submissions the pump must refresh the slot on its own —
	// no further round trips from this side.
	for i := 6; i < 10; i++ {
		th.Submit(o.Intern(names[i%len(names)]))
		lth.Submit(lo.Intern(names[i%len(names)]))
	}
	want = lth.PredictSequence(horizon)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok = th.Latest(got)
		if ok && samePreds(got, want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscription never refreshed: latest %+v want %+v", got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShmLatestZeroAlloc pins the other half of the co-located hot loop:
// reading the freshest subscription predictions allocates nothing once the
// buffer has grown.
func TestShmLatestZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 64)
	_, _, unixAddr := startServerTransports(t, Config{TraceDir: dir})
	o := shmClient(t, unixAddr, "synth")
	th := o.Thread(0)
	th.Submit(o.Intern("phase:a"))
	if err := th.Subscribe(4, 1); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	buf := make([]pythia.Prediction, 0, 8)
	allocs := testing.AllocsPerRun(2000, func() {
		var ok bool
		buf, ok = th.Latest(buf)
		if !ok {
			t.Fatal("Latest not ok")
		}
	})
	if allocs != 0 {
		t.Fatalf("Latest allocates %v/op, want 0", allocs)
	}
}

// TestShmSetupRefusedFallsBack drives hostile geometry through the wire
// op: the server must refuse with CodeShmSetup and keep the connection
// serving, and a SharedMem client on a refusing transport must fall back
// to the socket tier.
func TestShmSetupRefusedFallsBack(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 8)
	_, tcpAddr, _ := startServerTransports(t, Config{TraceDir: dir})

	// Wire-level: every invalid geometry and segment claim is refused
	// without killing the connection.
	rc := dialRaw(t, tcpAddr)
	okSize := uint64(transport.Geometry{Rings: 1, Slots: 64, PredCap: 1}.SegmentSize())
	bad := []wire.ShmSetup{
		{Rings: 0, Slots: 64, PredCap: 1, SegSize: 1, Path: "/dev/shm/x"},
		{Rings: 1 << 20, Slots: 64, PredCap: 1, SegSize: 1, Path: "/dev/shm/x"},
		{Rings: 1, Slots: 63, PredCap: 1, SegSize: 1, Path: "/dev/shm/x"},  // below min
		{Rings: 1, Slots: 100, PredCap: 1, SegSize: 1, Path: "/dev/shm/x"}, // not pow2
		{Rings: 1, Slots: 1 << 30, PredCap: 1, SegSize: 1, Path: "/dev/shm/x"},
		{Rings: 1, Slots: 64, PredCap: 0, SegSize: 1, Path: "/dev/shm/x"},
		{Rings: 1, Slots: 64, PredCap: 1 << 20, SegSize: 1, Path: "/dev/shm/x"},
		{Rings: 1, Slots: 64, PredCap: 1, SegSize: 7, Path: "/dev/shm/x"},          // size disagrees
		{Rings: 1, Slots: 64, PredCap: 1, SegSize: okSize, Path: "relative/path"},  // bad path
		{Rings: 1, Slots: 64, PredCap: 1, SegSize: okSize, Path: "/nonexistent/x"}, // no file
	}
	for i, ss := range bad {
		rc.send(wire.TShmSetup, wire.AppendShmSetup(nil, ss))
		typ, payload := rc.recv()
		if typ != wire.TError {
			t.Fatalf("case %d: got %s frame, want Error", i, typ)
		}
		code, _, err := wire.ParseError(payload)
		if err != nil || code != wire.CodeShmSetup {
			t.Fatalf("case %d: code %v err %v, want CodeShmSetup", i, code, err)
		}
	}
	// The connection survived every refusal.
	sid := rc.openSession("synth", 0, 0)
	rc.send(wire.TCloseSession, wire.AppendCloseSession(nil, sid))
	if typ, _ := rc.recv(); typ != wire.TSessionClosed {
		t.Fatalf("connection dead after shm refusals: got %s", typ)
	}

	// Client-level: SharedMem over TCP never attempts shm and lands on tcp.
	o, err := client.Connect(tcpAddr, "synth", client.Config{SharedMem: true})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if got := o.Transport(); got != "tcp" {
		t.Fatalf("SharedMem over tcp negotiated %q, want tcp", got)
	}
}

// TestShmCorruptRingKillsConnection plants a hostile producer cursor in a
// bound ring; the pump must detect the invariant violation and close the
// connection rather than decode garbage.
func TestShmCorruptRingKillsConnection(t *testing.T) {
	dir := t.TempDir()
	synthTrace(t, dir, "synth", 8)
	var logged atomic.Bool
	_, tcpAddr, _ := startServerTransports(t, Config{
		TraceDir: dir,
		Logf:     func(format string, args ...any) { logged.Store(true) },
	})
	rc := dialRaw(t, tcpAddr)

	g := transport.Geometry{Rings: 1, Slots: 64, PredCap: 1}
	seg, err := transport.CreateSegment(t.TempDir(), g.SegmentSize())
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	transport.WriteHeader(seg.Bytes(), g)
	rings, err := transport.MapRings(seg.Bytes(), g)
	if err != nil {
		t.Fatal(err)
	}
	rc.send(wire.TShmSetup, wire.AppendShmSetup(nil, wire.ShmSetup{
		Rings: 1, Slots: 64, PredCap: 1,
		SegSize: uint64(g.SegmentSize()), Path: seg.Path(),
	}))
	if typ, _ := rc.recv(); typ != wire.TShmSetupOK {
		t.Fatalf("setup answered %s", typ)
	}
	sid := rc.openSession("synth", 0, 0)
	rc.send(wire.TShmBind, wire.AppendShmBind(nil, sid, 0))
	if typ, _ := rc.recv(); typ != wire.TShmBound {
		t.Fatalf("bind answered %s", typ)
	}

	// Violate the SPSC invariant: tail claims more than the slot count.
	rings[0].CorruptTailForTest(1000)

	// The pump notices and closes the socket; the next read must fail.
	if err := rc.nc.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadFrame(rc.br, &rc.buf); err == nil {
		t.Fatal("connection stayed alive after ring corruption")
	}
	if !logged.Load() {
		t.Error("ring corruption was not logged")
	}
}
