package server

// Cluster support: the daemon-side half of the pythia-cluster subsystem.
//
// A clustered daemon knows three things: its own fleet address, the current
// shard map (epoch, replica count, daemon list), and how to talk to its
// peers over the same wire protocol clients use. From those it derives
// everything else with no coordination service:
//
//   - ownership enforcement: OpenSession for a tenant outside this daemon's
//     assignment is refused with the non-fatal CodeWrongShard, steering the
//     client to re-fetch the map and re-route;
//   - epoch gossip: every TShardMap request carries the caller's epoch and
//     the daemon adopts any higher one it sees (max-wins), so an operator
//     bumping one daemon converges the fleet;
//   - anti-entropy sweeps: on adoption (and periodically, when enabled) the
//     daemon walks its trace directory and offers every tenant's newest
//     committed generation to the daemons the map assigns it to — that is
//     both planned migration on epoch change and warm replication in one
//     mechanism. The receiver applies last-generation-wins and the atomic
//     tracefile.Save rename is the commit point.
//
// Sessions already open are never re-homed by an epoch change: ownership is
// checked at session open only, so an in-flight stream finishes where it
// started and the client's next open lands on the new owner.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/tracefile"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/pythia"
)

// clusterState is the immutable cluster view swapped atomically on epoch
// adoption.
type clusterState struct {
	self string // this daemon's address as it appears in the map
	m    cluster.Map
}

// ConfigureCluster joins the daemon to a fleet. self must be the address
// the other daemons and the clients dial for this daemon (it is matched
// literally against the map). daemons is the full fleet including self.
// Safe to call after listeners are bound — tests bind :0 first and pass
// the resolved address. Calling it again with a higher epoch adopts that
// epoch and triggers a sweep.
func (s *Server) ConfigureCluster(self string, daemons []string, epoch uint64, replicas int) {
	s.clusMu.Lock()
	s.clus.Store(&clusterState{
		self: self,
		m:    cluster.Map{Epoch: epoch, Replicas: replicas, Daemons: daemons},
	})
	s.clusMu.Unlock()
	// pythia:detached — one-shot anti-entropy pass; Sweep serializes on
	// sweepMu and returns immediately once the server starts draining, so
	// nothing needs to join it.
	go s.Sweep()
}

// ClusterMap returns the daemon's current shard map (zero Map when not
// clustered).
func (s *Server) ClusterMap() cluster.Map {
	if cs := s.clus.Load(); cs != nil {
		return cs.m
	}
	return cluster.Map{}
}

// adoptEpoch applies max-wins epoch gossip: a higher epoch re-hashes the
// same fleet and triggers a migration/replication sweep. Reports whether
// the epoch was adopted.
func (s *Server) adoptEpoch(epoch uint64) bool {
	s.clusMu.Lock()
	cs := s.clus.Load()
	if cs == nil || epoch <= cs.m.Epoch {
		s.clusMu.Unlock()
		return false
	}
	next := &clusterState{self: cs.self, m: cs.m}
	next.m.Epoch = epoch
	s.clus.Store(next)
	s.clusMu.Unlock()
	s.logf("pythiad: cluster epoch %d adopted (was %d)", epoch, cs.m.Epoch)
	// pythia:detached — one-shot anti-entropy pass; Sweep serializes on
	// sweepMu and returns immediately once the server starts draining, so
	// nothing needs to join it.
	go s.Sweep()
	return true
}

// ProbePeers gossips the current epoch with every peer once. Run at
// startup so a daemon joining (or rejoining) a fleet picks up an epoch
// bumped while it was away, and so its own higher epoch propagates.
func (s *Server) ProbePeers() {
	cs := s.clus.Load()
	if cs == nil || !cs.m.Clustered() {
		return
	}
	for _, d := range cs.m.Daemons {
		if d == cs.self {
			continue
		}
		p, err := dialPeer(d, 2*time.Second)
		if err != nil {
			continue // peer not up yet; gossip flows the other way later
		}
		if sm, err := p.shardMap(cs.m.Epoch); err == nil {
			s.adoptEpoch(sm.Epoch)
		}
		if cerr := p.close(); cerr != nil {
			s.logf("pythiad: probe: closing peer %s: %v", d, cerr)
		}
	}
}

// Sweep walks the trace directory and offers every tenant's newest
// committed generation to the daemons the current map assigns it to —
// replicas when this daemon is assigned, the whole new assignment when an
// epoch change took the tenant away (planned handoff). One sweep runs at
// a time; a draining server does not sweep.
func (s *Server) Sweep() {
	if s.draining.Load() {
		return
	}
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	cs := s.clus.Load()
	if cs == nil || !cs.m.Clustered() {
		return
	}
	paths, err := filepath.Glob(filepath.Join(s.cfg.TraceDir, "*.pythia"))
	if err != nil {
		s.logf("pythiad: sweep: %v", err)
		return
	}
	// Group offers by target so each peer is dialed once per sweep.
	byPeer := make(map[string][]string)
	for _, path := range paths {
		tenant := strings.TrimSuffix(filepath.Base(path), ".pythia")
		if sanitizeTenant(tenant) != nil {
			continue
		}
		for _, d := range cs.m.Assignment(tenant) {
			if d != cs.self {
				byPeer[d] = append(byPeer[d], tenant)
			}
		}
	}
	for peer, tenants := range byPeer {
		p, err := dialPeer(peer, 2*time.Second)
		if err != nil {
			s.logf("pythiad: sweep: dial %s: %v", peer, err)
			continue
		}
		for _, tenant := range tenants {
			accepted, haveGen, err := p.offerModel(s.loadOffer(tenant, cs.self))
			switch {
			case err != nil:
				s.logf("pythiad: sweep: offer %q to %s: %v", tenant, peer, err)
			case accepted:
				s.logf("pythiad: sweep: %q shipped to %s (generation %d)", tenant, peer, haveGen)
			}
		}
		if cerr := p.close(); cerr != nil {
			s.logf("pythiad: sweep: closing peer %s: %v", peer, cerr)
		}
	}
}

// loadOffer builds the TOfferModel payload for one tenant: the trace file
// as currently committed, serialized, with its generation and this
// daemon's address as the source.
func (s *Server) loadOffer(tenant, self string) wire.ModelOffer {
	om := wire.ModelOffer{Tenant: tenant, Source: self}
	ts, err := pythia.LoadTraceSet(filepath.Join(s.cfg.TraceDir, tenant+".pythia"))
	if err != nil {
		return om // empty payload; the peer rejects it
	}
	if ts.Provenance != nil {
		om.Generation = ts.Provenance.Generation
	}
	var buf bytes.Buffer
	if err := tracefile.Write(&buf, ts); err != nil || buf.Len() > wire.MaxModelBytes {
		return om
	}
	om.Payload = buf.Bytes()
	return om
}

// checkShard enforces ownership at session-open time. Nil when this daemon
// is in the tenant's assignment (or the daemon is not clustered); a
// non-fatal CodeWrongShard refusal otherwise — the connection stays usable
// and the client re-fetches the map.
func (c *conn) checkShard(tenant string) *protoErr {
	cs := c.srv.clus.Load()
	if cs == nil || cs.m.Contains(cs.self, tenant) {
		return nil
	}
	return &protoErr{
		code: wire.CodeWrongShard,
		msg: fmt.Sprintf("tenant %q is owned by %s under shard-map epoch %d",
			tenant, cs.m.Owner(tenant), cs.m.Epoch),
	}
}

// shardMap answers a TShardMap request and folds the caller's epoch into
// the gossip (max-wins). A non-clustered daemon answers with an empty map.
func (c *conn) shardMap(callerEpoch uint64) error {
	c.srv.adoptEpoch(callerEpoch)
	var sm wire.ShardMap
	if cs := c.srv.clus.Load(); cs != nil {
		r := cs.m.Replicas
		if r > 255 {
			r = 255
		}
		sm = wire.ShardMap{Epoch: cs.m.Epoch, Replicas: uint8(r), Daemons: cs.m.Daemons}
	}
	c.out = wire.AppendShardMapR(c.out[:0], sm)
	return wire.WriteFrame(c.bw, wire.TShardMapR, c.out)
}

// fetchModel answers a TFetchModel request with the tenant's newest
// committed generation as a TOfferModel frame.
func (c *conn) fetchModel(tenant string) error {
	if err := sanitizeTenant(tenant); err != nil {
		return &protoErr{code: wire.CodeUnknownTenant, msg: err.Error()}
	}
	self := ""
	if cs := c.srv.clus.Load(); cs != nil {
		self = cs.self
	}
	om := c.srv.loadOffer(tenant, self)
	if len(om.Payload) == 0 {
		return &protoErr{code: wire.CodeUnknownTenant,
			msg: fmt.Sprintf("tenant %q has no committed generation here", tenant)}
	}
	c.out = wire.AppendOfferModel(c.out[:0], om)
	return wire.WriteFrame(c.bw, wire.TOfferModel, c.out)
}

// offerModel applies one TOfferModel with last-generation-wins: the offer
// is committed (atomic tracefile.Save rename) only when this daemon has no
// generation for the tenant, or a strictly older one. The verdict frame
// reports what is now on disk either way. The shipped provenance is
// stamped with the source daemon so lineage listings can tell a replicated
// generation from a locally recorded one.
func (c *conn) offerModel(om wire.ModelOffer) error {
	if err := sanitizeTenant(om.Tenant); err != nil {
		return &protoErr{code: wire.CodeUnknownTenant, msg: err.Error()}
	}
	ts, err := tracefile.Read(bytes.NewReader(om.Payload))
	if err != nil {
		return &protoErr{code: wire.CodeInternal, msg: fmt.Sprintf("offered model: %v", err)}
	}
	path := filepath.Join(c.srv.cfg.TraceDir, om.Tenant+".pythia")
	accepted := true
	haveGen := uint64(0)
	if local, lerr := pythia.LoadTraceSet(path); lerr == nil {
		if local.Provenance != nil {
			haveGen = local.Provenance.Generation
		}
		accepted = om.Generation > haveGen
	} else if !os.IsNotExist(lerr) {
		// An unreadable local file loses to any intact offer.
		c.srv.logf("pythiad: offer %q: local file unreadable, accepting: %v", om.Tenant, lerr)
	}
	if accepted {
		src := om.Source
		if src == "" {
			src = c.nc.RemoteAddr().String()
		}
		if ts.Provenance == nil {
			ts.Provenance = &pythia.Provenance{Generation: om.Generation}
		}
		ts.Provenance.ReplicatedFrom = src
		if serr := pythia.SaveTraceSet(path, ts); serr != nil {
			return &protoErr{code: wire.CodeInternal, msg: fmt.Sprintf("committing offered model: %v", serr)}
		}
		haveGen = om.Generation
		c.srv.logf("pythiad: tenant %q generation %d accepted from %s", om.Tenant, om.Generation, src)
	}
	c.out = wire.AppendModelAccepted(c.out[:0], accepted, haveGen)
	return wire.WriteFrame(c.bw, wire.TModelAccepted, c.out)
}

// tenantBucket returns the per-tenant QoS bucket, creating it on the
// tenant's first use. Nil (never charges, never refuses) when per-tenant
// budgets are not configured.
func (s *Server) tenantBucket(t *tenant) *cluster.TokenBucket {
	rate := s.cfg.TenantEventsPerSec
	if rate <= 0 {
		return nil
	}
	t.qosOnce.Do(func() {
		burst := s.cfg.TenantBurst
		if burst <= 0 {
			burst = rate // default: one second of slack
		}
		t.qos = cluster.NewTokenBucket(rate, burst, time.Now().UnixNano())
	})
	return t.qos
}

// chargeEvents debits n submitted events against the session's tenant
// budget and the daemon-wide pacing bucket. Submits are one-way and are
// never refused — an exhausted tenant budget surfaces on the tenant's next
// gated request instead — but an overdrafted pacing bucket stalls the
// connection goroutine, bounding the daemon's aggregate admitted rate.
// pythia:hotpath — called per Submit; must not allocate.
func (c *conn) chargeEvents(sid uint32, n int64) {
	q := c.sessions[sid].ct.qos
	pace := c.srv.pace
	if q == nil && pace == nil {
		return
	}
	now := time.Now().UnixNano()
	q.Charge(n, now)
	if pace != nil {
		pace.Charge(n, now)
		if bal := pace.Balance(now); bal < 0 {
			time.Sleep(time.Duration(-bal * int64(time.Second) / c.srv.cfg.PaceEvents))
		}
	}
}

// gateTenant admits or refuses one unit of request/response work against
// the tenant's budget. Refusals are non-fatal CodeRetryLater with the
// bucket's own retry-after hint: the Error frame is the response, so
// pairing survives and the client backs off.
func gateTenant(q *cluster.TokenBucket) *protoErr {
	if q == nil {
		return nil
	}
	if ok, retryMs := q.Gate(time.Now().UnixNano()); !ok {
		if retryMs > 60_000 {
			retryMs = 60_000
		}
		return &protoErr{
			code:    wire.CodeRetryLater,
			msg:     "tenant event budget exhausted",
			retryMs: uint32(retryMs),
		}
	}
	return nil
}

// peerConn is a minimal wire client for daemon-to-daemon traffic: dial,
// version handshake, then synchronous request/response frames. Peers reuse
// the public protocol, so migration works across any transport a daemon
// listens on ("host:port" TCP, "unix:///path" sockets).
type peerConn struct {
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte
	out []byte
}

// dialPeer connects and completes the Hello handshake. addr takes the
// same forms client dials do: "host:port", "tcp://host:port", or
// "unix:///path/to.sock".
func dialPeer(addr string, timeout time.Duration) (*peerConn, error) {
	nc, _, err := transport.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	p := &peerConn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	fail := func(err error) (*peerConn, error) {
		return nil, errors.Join(err, p.close())
	}
	if err := nc.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return fail(err)
	}
	p.out = wire.AppendHello(p.out[:0], 0)
	if err := wire.WriteFrame(p.bw, wire.THello, p.out); err != nil {
		return fail(err)
	}
	if err := p.bw.Flush(); err != nil {
		return fail(err)
	}
	t, payload, err := wire.ReadFrame(p.br, &p.buf)
	if err != nil {
		return fail(err)
	}
	if t != wire.THelloOK {
		return fail(fmt.Errorf("peer %s: handshake answered with %s", addr, t))
	}
	if _, _, _, err := wire.ParseHelloOK(payload); err != nil {
		return fail(err)
	}
	return p, nil
}

func (p *peerConn) close() error {
	return p.nc.Close()
}

// roundTrip sends one frame and reads the typed response. An Error frame
// comes back as a wire-shaped error; any other unexpected type fails.
func (p *peerConn) roundTrip(t wire.Type, payload []byte, want wire.Type) ([]byte, error) {
	if err := p.nc.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(p.bw, t, payload); err != nil {
		return nil, err
	}
	if err := p.bw.Flush(); err != nil {
		return nil, err
	}
	rt, rp, err := wire.ReadFrame(p.br, &p.buf)
	if err != nil {
		return nil, err
	}
	if rt == wire.TError {
		code, msg, perr := wire.ParseError(rp)
		if perr != nil {
			return nil, fmt.Errorf("peer sent a malformed Error frame for %s: %w", t, perr)
		}
		return nil, fmt.Errorf("peer refused %s: %s: %s", t, code, msg)
	}
	if rt != want {
		return nil, fmt.Errorf("peer answered %s with %s", t, rt)
	}
	return rp, nil
}

// shardMap gossips epochs with the peer and returns its map.
func (p *peerConn) shardMap(epoch uint64) (wire.ShardMap, error) {
	p.out = wire.AppendShardMap(p.out[:0], epoch)
	rp, err := p.roundTrip(wire.TShardMap, p.out, wire.TShardMapR)
	if err != nil {
		return wire.ShardMap{}, err
	}
	return wire.ParseShardMapR(rp)
}

// offerModel ships one tenant generation and returns the peer's verdict.
func (p *peerConn) offerModel(om wire.ModelOffer) (accepted bool, haveGen uint64, err error) {
	if len(om.Payload) == 0 {
		return false, 0, fmt.Errorf("tenant %q: nothing to offer", om.Tenant)
	}
	p.out = wire.AppendOfferModel(p.out[:0], om)
	rp, err := p.roundTrip(wire.TOfferModel, p.out, wire.TModelAccepted)
	if err != nil {
		return false, 0, err
	}
	return wire.ParseModelAccepted(rp)
}
