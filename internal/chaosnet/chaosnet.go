// Package chaosnet is a deterministic in-process network-fault proxy for
// testing the serving stack's resilience. A Proxy sits between a client
// and a pythiad listener, relaying bytes while injecting a seeded,
// reproducible schedule of faults: added latency, stalls, torn writes
// (a partial chunk followed by an abrupt close), mid-stream resets, and
// silent byte drops. Partitions are modelled explicitly with CutAll (kill
// every live connection now) and SetEnabled(false) (refuse new ones).
//
// Determinism contract: every fault decision is a pure function of
// (Config.Seed, connection index, direction, chunk index). Two runs that
// accept connections in the same order and read the same chunk sequence
// inject the same faults at the same points. Chunk boundaries themselves
// depend on kernel scheduling, so byte-exact schedules require the writer
// to pace its frames (the chaos tests do); what never varies is the
// decision sequence per chunk.
package chaosnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Config selects the fault schedule. Zero values disable each fault, so
// the zero Config is a transparent relay. "Every n" fields fire on every
// nth relayed chunk per direction (n ≥ 1; 1 means every chunk).
type Config struct {
	// Seed drives the per-connection PRNGs. Two proxies with the same
	// seed inject the same schedule.
	Seed int64
	// Latency delays every relayed chunk.
	Latency time.Duration
	// StallEvery pauses the stream for StallFor on every nth chunk —
	// long enough, with keepalive enforcement, to look half-open.
	StallEvery int
	StallFor   time.Duration
	// TornEvery forwards only a prefix of every nth chunk and then kills
	// the connection, so the receiver sees a torn frame.
	TornEvery int
	// ResetEvery kills the connection abruptly on every nth chunk,
	// before forwarding it.
	ResetEvery int
	// DropEvery silently discards every nth chunk. The byte stream skips
	// ahead, which a length-prefixed protocol sees as frame corruption.
	DropEvery int
}

// Proxy is one listener relaying to one backend address.
type Proxy struct {
	cfg         Config
	backendNet  string
	backendAddr string
	frontAddr   string // scheme-prefixed, for client.Dial
	ln          net.Listener

	enabled atomic.Bool
	muted   atomic.Bool
	total   atomic.Int64

	mu    sync.Mutex
	live  map[int64]*proxyConn
	close sync.Once

	quit chan struct{}
	wg   sync.WaitGroup
}

// proxyConn is one relayed connection pair.
type proxyConn struct {
	client net.Conn
	server net.Conn
}

// kill severs both halves. abrupt asks for a TCP RST instead of FIN.
func (pc *proxyConn) kill(abrupt bool) {
	if abrupt {
		if tc, ok := pc.client.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		if tc, ok := pc.server.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
	}
	_ = pc.client.Close()
	_ = pc.server.Close()
}

// New starts a proxy in front of backend (a transport address: "host:port",
// "tcp://host:port", or "unix:///path"). The proxy listens on the same
// address family as the backend — TCP backends get a loopback port, unix
// backends a sibling socket at <path>.chaos — so the transport tier the
// client negotiates through the proxy matches the one it would negotiate
// directly.
func New(backend string, cfg Config) (*Proxy, error) {
	network, address, err := transport.ParseAddr(backend)
	if err != nil {
		return nil, err
	}
	var front string
	switch network {
	case transport.NetUnix:
		front = "unix://" + address + ".chaos"
	default:
		front = "tcp://127.0.0.1:0"
	}
	ln, err := transport.Listen(front)
	if err != nil {
		return nil, fmt.Errorf("chaosnet: %w", err)
	}
	if network == transport.NetTCP {
		front = "tcp://" + ln.Addr().String()
	}
	p := &Proxy{
		cfg:         cfg,
		backendNet:  network,
		backendAddr: address,
		frontAddr:   front,
		ln:          ln,
		live:        make(map[int64]*proxyConn),
		quit:        make(chan struct{}),
	}
	p.enabled.Store(true)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the scheme-prefixed address clients should dial.
func (p *Proxy) Addr() string { return p.frontAddr }

// Conns returns the number of connections accepted so far.
func (p *Proxy) Conns() int { return int(p.total.Load()) }

// SetEnabled controls the partition: while disabled, new connections are
// accepted and immediately closed, so dials fail at the handshake.
// Existing connections are unaffected — combine with CutAll for a full
// partition.
func (p *Proxy) SetEnabled(on bool) { p.enabled.Store(on) }

// ClearFaults stops injecting faults on live and future connections,
// turning the proxy into a transparent relay; chaos tests use it to end a
// run with a convergence phase. The chunk counters keep advancing, so the
// schedule stays deterministic if faults are re-enabled.
func (p *Proxy) ClearFaults() { p.muted.Store(true) }

// CutAll severs every live connection immediately.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.live))
	for _, pc := range p.live {
		conns = append(conns, pc)
	}
	p.mu.Unlock()
	for _, pc := range conns {
		pc.kill(true)
	}
}

// Close stops the listener, severs every connection, and joins the relay
// goroutines.
func (p *Proxy) Close() error {
	var err error
	p.close.Do(func() {
		close(p.quit)
		err = p.ln.Close()
		p.CutAll()
		p.wg.Wait()
	})
	return err
}

// acceptLoop accepts frontend connections, dials the backend for each,
// and starts the two relay pumps.
func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.quit:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if !p.enabled.Load() {
			_ = client.Close()
			continue
		}
		server, err := net.DialTimeout(p.backendNet, p.backendAddr, 5*time.Second)
		if err != nil {
			_ = client.Close()
			continue
		}
		id := p.total.Add(1) - 1
		pc := &proxyConn{client: client, server: server}
		p.mu.Lock()
		p.live[id] = pc
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(pc, id, 0, client, server)
		go p.pump(pc, id, 1, server, client)
	}
}

// connSeed mixes the proxy seed with the connection index and direction
// (SplitMix64 finalizer) so each pump gets an independent deterministic
// stream.
func connSeed(seed, conn int64, dir int64) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(conn)*0xbf58476d1ce4e5b9 + uint64(dir+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// due reports whether an every-n fault fires on this chunk. The PRNG
// phase-shifts the schedule so the two directions and successive
// connections do not fault in lockstep, while staying a pure function of
// (seed, conn, dir, chunk).
func due(every int, chunk int, phase int) bool {
	if every <= 0 {
		return false
	}
	return (chunk+phase)%every == 0
}

// pump relays src → dst, injecting the configured faults. It removes the
// connection from the live table when the stream ends.
func (p *Proxy) pump(pc *proxyConn, id int64, dir int, src, dst net.Conn) {
	defer p.wg.Done()
	defer func() {
		pc.kill(false)
		p.mu.Lock()
		delete(p.live, id)
		p.mu.Unlock()
	}()
	rng := rand.New(rand.NewSource(connSeed(p.cfg.Seed, id, int64(dir))))
	phase := rng.Intn(1 << 16)
	buf := make([]byte, 32<<10)
	for chunk := 1; ; chunk++ {
		n, err := src.Read(buf)
		if n > 0 {
			if p.muted.Load() {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
				if err != nil {
					return
				}
				continue
			}
			if p.cfg.Latency > 0 && !p.sleep(p.cfg.Latency) {
				return
			}
			if due(p.cfg.StallEvery, chunk, phase) && !p.sleep(p.cfg.StallFor) {
				return
			}
			switch {
			case due(p.cfg.ResetEvery, chunk, phase+3):
				pc.kill(true)
				return
			case due(p.cfg.TornEvery, chunk, phase+7):
				cut := 1 + rng.Intn(n)
				_, _ = dst.Write(buf[:cut])
				pc.kill(true)
				return
			case due(p.cfg.DropEvery, chunk, phase+11):
				// Silently swallow the chunk.
			default:
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

// sleep waits d unless the proxy is closing; it reports whether the pump
// should continue.
func (p *Proxy) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.quit:
		return false
	case <-t.C:
		return true
	}
}
