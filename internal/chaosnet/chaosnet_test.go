package chaosnet

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// echoBackend accepts connections and echoes bytes until closed.
func echoBackend(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String(), func() {
		_ = ln.Close()
		wg.Wait()
	}
}

func TestPassthrough(t *testing.T) {
	backend, stop := echoBackend(t)
	defer stop()
	p, err := New(backend, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	_, addr, err := transport.ParseAddr(p.Addr())
	if err != nil {
		t.Fatalf("proxy addr %q: %v", p.Addr(), err)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()

	msg := []byte("through the proxy and back")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(msg))
	if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %q want %q", got, msg)
	}
	if p.Conns() != 1 {
		t.Fatalf("Conns = %d, want 1", p.Conns())
	}
}

func TestCutAllSeversLiveConnections(t *testing.T) {
	backend, stop := echoBackend(t)
	defer stop()
	p, err := New(backend, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	_, addr, _ := transport.ParseAddr(p.Addr())
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	one := make([]byte, 1)
	if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	if _, err := io.ReadFull(c, one); err != nil {
		t.Fatalf("read: %v", err)
	}

	p.CutAll()
	if _, err := io.ReadFull(c, one); err == nil {
		t.Fatalf("read after CutAll succeeded, want error")
	}
}

func TestDisabledProxyRefusesNewConns(t *testing.T) {
	backend, stop := echoBackend(t)
	defer stop()
	p, err := New(backend, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetEnabled(false)

	_, addr, _ := transport.ParseAddr(p.Addr())
	c, err := net.Dial("tcp", addr)
	if err != nil {
		// A refused dial also satisfies the partition.
		return
	}
	defer c.Close()
	// The accept side closes immediately: the first read must fail.
	if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatalf("read on partitioned proxy succeeded, want error")
	}
}

// TestFaultScheduleDeterministic pins the determinism contract: the fault
// decision sequence is a pure function of (seed, conn, dir, chunk).
func TestFaultScheduleDeterministic(t *testing.T) {
	if a, b := connSeed(42, 3, 1), connSeed(42, 3, 1); a != b {
		t.Fatalf("connSeed not deterministic: %d vs %d", a, b)
	}
	if a, b := connSeed(42, 3, 0), connSeed(42, 3, 1); a == b {
		t.Fatalf("connSeed does not separate directions")
	}
	if a, b := connSeed(42, 3, 0), connSeed(43, 3, 0); a == b {
		t.Fatalf("connSeed does not separate seeds")
	}
	// due is periodic and phase-stable.
	fires := 0
	for chunk := 1; chunk <= 30; chunk++ {
		if due(10, chunk, 7) {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("due(10, 1..30) fired %d times, want 3", fires)
	}
	if due(0, 5, 0) || due(-1, 5, 0) {
		t.Fatalf("disabled fault fired")
	}
}

// TestTornWriteKillsConnection drives a proxy configured to tear the first
// chunk and checks the stream dies.
func TestTornWriteKillsConnection(t *testing.T) {
	backend, stop := echoBackend(t)
	defer stop()
	p, err := New(backend, Config{Seed: 1, TornEvery: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	_, addr, _ := transport.ParseAddr(p.Addr())
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer c.Close()
	if _, err := c.Write(bytes.Repeat([]byte("abcd"), 256)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	// With TornEvery=1 every chunk is torn; the connection must die before
	// the full echo arrives.
	n, err := io.ReadFull(c, make([]byte, 1024))
	if err == nil && n == 1024 {
		t.Fatalf("full echo arrived through a torn proxy")
	}
}
