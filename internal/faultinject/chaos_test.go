package faultinject_test

// The chaos suite: every test drives the public oracle API through a
// deterministic fault schedule and asserts the fail-open contract — no
// panic reaches the host, no call stalls, and degradation follows the
// documented policy (Healthy → Degraded on contained panics and budget
// breaches, Healthy ↔ Quarantined under the divergence watchdog). Run with
// scripts/check.sh --chaos (CI runs it under -race).

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/faultinject"
	"repro/internal/ompsim"
	"repro/pythia"
)

// chaosDeadline is the per-test stall budget: generous enough for -race on
// a loaded CI machine, tight enough to catch a genuine hang.
const chaosDeadline = 60 * time.Second

// runWithDeadline fails the test if fn does not return within the deadline
// — the "no stall" half of the fail-open contract.
func runWithDeadline(t *testing.T, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(chaosDeadline):
		t.Fatalf("chaos scenario stalled (no result within %v)", chaosDeadline)
	}
}

// referenceOracle records a strongly repetitive two-event pattern and
// returns the trace plus the interned ids.
func referenceOracle(t *testing.T, iters int) (*pythia.TraceSet, pythia.ID, pythia.ID) {
	t.Helper()
	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	a, b := rec.Intern("compute"), rec.Intern("exchange")
	th := rec.Thread(0)
	for i := 0; i < iters; i++ {
		th.Submit(a)
		th.Submit(b)
	}
	ts, err := rec.Finish()
	if err != nil {
		t.Fatalf("reference Finish: %v", err)
	}
	return ts, a, b
}

// TestChaosRecordFaultyStream records streams mangled by drops, duplicates,
// substitutions, and clock skew across several seeds: the recorder must
// produce a valid trace and stay Healthy — a faulty instrumented runtime is
// the caller's bug, not an oracle failure.
func TestChaosRecordFaultyStream(t *testing.T) {
	runWithDeadline(t, func() {
		for _, seed := range []int64{1, 7, 42, 1337} {
			var now int64
			var inj *faultinject.Injector
			rec := pythia.NewRecordOracle(pythia.WithClock(func() int64 {
				now += 50
				return inj.Skew(now)
			}))
			ids := []pythia.ID{
				rec.Intern("a"), rec.Intern("b"), rec.Intern("c"), rec.Intern("d"),
			}
			alphabet := make([]int32, len(ids))
			for i, id := range ids {
				alphabet[i] = int32(id)
			}
			inj = faultinject.New(faultinject.Plan{
				Seed: seed, Drop: 0.2, Duplicate: 0.2, Substitute: 0.1,
				Alphabet: alphabet, MaxSkewNs: 500,
			})
			th := rec.Thread(0)
			for i := 0; i < 5000; i++ {
				for _, f := range inj.Perturb(int32(ids[i%len(ids)])) {
					th.Submit(pythia.ID(f))
				}
			}
			ts, err := rec.Finish()
			if err != nil {
				t.Fatalf("seed %d: Finish: %v", seed, err)
			}
			if err := ts.Validate(); err != nil {
				t.Fatalf("seed %d: recorded trace invalid: %v", seed, err)
			}
			if h := rec.Health(); h.State != pythia.Healthy {
				t.Fatalf("seed %d: recorder %v (cause %q), want Healthy", seed, h.State, h.Cause)
			}
		}
	})
}

// TestChaosPredictNoisyStream replays heavily faulted streams — including
// never-interned event ids — into a predict-mode oracle while hammering
// every query method. Nothing may panic; answers may be pulled but the
// oracle must keep functioning.
func TestChaosPredictNoisyStream(t *testing.T) {
	runWithDeadline(t, func() {
		ts, a, b := referenceOracle(t, 300)
		for _, seed := range []int64{3, 99, 2024} {
			oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
			if err != nil {
				t.Fatal(err)
			}
			inj := faultinject.New(faultinject.Plan{
				Seed: seed, Drop: 0.3, Duplicate: 0.2, Substitute: 0.3,
				// Empty alphabet: substitutions invent ids no registry holds.
			})
			th := oracle.Thread(0)
			th.StartAtBeginning()
			for i := 0; i < 4000; i++ {
				src := a
				if i%2 == 1 {
					src = b
				}
				for _, f := range inj.Perturb(int32(src)) {
					th.Submit(pythia.ID(f))
				}
				th.PredictAt(1)
				if i%7 == 0 {
					th.PredictSequence(3)
				}
				if i%11 == 0 {
					th.PredictDurationUntil(b, 8)
				}
			}
			h := oracle.Health()
			if h.PanicsContained != 0 {
				t.Fatalf("seed %d: %d contained panics under noise (cause %q) — noise must not reach panic paths",
					seed, h.PanicsContained, h.Cause)
			}
		}
	})
}

// TestChaosQuarantineRecovery drives the divergence watchdog through a full
// cycle on one oracle: garbage quarantines it (predictions pulled, state
// Quarantined), re-convergence releases it (predictions restored, state
// Healthy).
func TestChaosQuarantineRecovery(t *testing.T) {
	runWithDeadline(t, func() {
		ts, a, b := referenceOracle(t, 400)
		oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
		if err != nil {
			t.Fatal(err)
		}
		th := oracle.Thread(0)
		th.StartAtBeginning()

		// Phase 1: on-pattern warmup — predictions flow.
		for i := 0; i < 64; i++ {
			th.Submit(a)
			th.Submit(b)
		}
		if _, ok := th.PredictAt(1); !ok {
			t.Fatal("warmup: prediction unavailable on a converged stream")
		}

		// Phase 2: pure garbage — the watchdog must quarantine.
		inj := faultinject.New(faultinject.Plan{Seed: 5, Substitute: 1})
		for i := 0; i < 512; i++ {
			for _, f := range inj.Perturb(int32(a)) {
				th.Submit(pythia.ID(f))
			}
		}
		if _, ok := th.PredictAt(1); ok {
			t.Fatal("diverged: prediction still offered after 512 garbage events")
		}
		if h := oracle.Health(); h.State != pythia.Quarantined || h.QuarantinedThreads != 1 {
			t.Fatalf("diverged: health %v (%d quarantined), want Quarantined/1", h.State, h.QuarantinedThreads)
		}

		// Phase 3: the stream re-converges — the watchdog must release.
		for i := 0; i < 512; i++ {
			th.Submit(a)
			th.Submit(b)
		}
		if _, ok := th.PredictAt(1); !ok {
			t.Fatal("re-converged: predictions not restored")
		}
		if h := oracle.Health(); h.State != pythia.Healthy {
			t.Fatalf("re-converged: health %v (cause %q), want Healthy", h.State, h.Cause)
		}
	})
}

// TestChaosPanicContainment schedules a genuine internal panic (a clock
// that blows up mid-run) and asserts the fail-open contract: the panic is
// contained, the oracle degrades, every later call is a cheap no-op, and
// Finish reports the failure as an error.
func TestChaosPanicContainment(t *testing.T) {
	runWithDeadline(t, func() {
		rec := pythia.NewRecordOracle(pythia.WithClock(faultinject.PanicClock(50)))
		a := rec.Intern("tick")
		th := rec.Thread(0)
		for i := 0; i < 500; i++ {
			th.Submit(a) // must never panic out
		}
		h := rec.Health()
		if h.State != pythia.Degraded {
			t.Fatalf("state %v after scheduled panic, want Degraded", h.State)
		}
		if h.PanicsContained < 1 || h.Cause == "" {
			t.Fatalf("containment not surfaced: %+v", h)
		}
		if _, err := rec.Finish(); err == nil {
			t.Fatal("Finish on a degraded oracle returned no error")
		}
		// Degraded fast path: more submissions stay no-ops.
		before := rec.Health().PanicsContained
		for i := 0; i < 100; i++ {
			th.Submit(a)
		}
		if after := rec.Health().PanicsContained; after != before {
			t.Fatalf("degraded Submit still reaches fault: %d → %d contained panics", before, after)
		}
	})
}

// TestChaosBudgetBreach feeds a high-entropy stream under tight budgets:
// the grammar must freeze instead of growing, the trace must be marked
// truncated with a dropped-event count, and prediction from the truncated
// trace must still construct.
func TestChaosBudgetBreach(t *testing.T) {
	runWithDeadline(t, func() {
		rec := pythia.NewRecordOracle(
			pythia.WithoutTimestamps(),
			pythia.WithMaxEvents(10_000),
			pythia.WithGrammarBudget(64, 512),
		)
		ids := make([]pythia.ID, 64)
		for i := range ids {
			ids[i] = rec.Intern("ev", int64(i))
		}
		th := rec.Thread(0)
		// A multiplicative-walk stream: enough structure to intern digrams,
		// enough entropy to grow rules without bound.
		x := 1
		for i := 0; i < 50_000; i++ {
			x = (x*31 + 17) % len(ids)
			th.Submit(ids[x])
		}
		ts, err := rec.Finish()
		if err != nil {
			t.Fatalf("Finish after budget breach: %v", err)
		}
		tr := ts.Threads[0]
		if !tr.Truncated || tr.Dropped == 0 {
			t.Fatalf("trace not marked truncated (truncated=%v dropped=%d)", tr.Truncated, tr.Dropped)
		}
		if n := len(tr.Grammar.Rules); n > 64+8 {
			t.Fatalf("grammar kept growing past budget: %d rules", n)
		}
		h := rec.Health()
		if h.State != pythia.Degraded || h.BudgetBreaches == 0 {
			t.Fatalf("health %v (%d breaches), want Degraded with breaches", h.State, h.BudgetBreaches)
		}
		if _, err := pythia.NewPredictOracle(ts, pythia.Config{}); err != nil {
			t.Fatalf("truncated trace unusable for prediction: %v", err)
		}
	})
}

// TestChaosCorruptedTraceFile flips bytes in and truncates a valid trace
// file across many seeds: LoadOracle must either return an error or a
// working oracle — never panic, never hang.
func TestChaosCorruptedTraceFile(t *testing.T) {
	runWithDeadline(t, func() {
		ts, _, _ := referenceOracle(t, 200)
		dir := t.TempDir()
		clean := filepath.Join(dir, "clean.pythia")
		if err := pythia.SaveTraceSet(clean, ts); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(clean)
		if err != nil {
			t.Fatal(err)
		}
		mangled := filepath.Join(dir, "mangled.pythia")
		tryLoad := func(seed int64, blob []byte) {
			if err := os.WriteFile(mangled, blob, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := pythia.LoadOracle(mangled, pythia.Config{}); err == nil {
				// A surviving load must yield a usable oracle; Validate ran
				// inside Load. Nothing more to assert — no panic is the test.
				t.Logf("seed %d: corruption survived validation (acceptable)", seed)
			}
		}
		for seed := int64(0); seed < 64; seed++ {
			tryLoad(seed, faultinject.FlipBytes(data, seed, 1+int(seed%8)))
		}
		for seed := int64(0); seed < 32; seed++ {
			tryLoad(seed, faultinject.TruncateBytes(data, seed))
		}
	})
}

// TestChaosDivergenceFallback is the end-to-end divergence demo: an
// adaptive OpenMP runtime predicting from a reference trace is hit with a
// 97% error-injection rate. The watchdog quarantines the oracle, the
// runtime falls back to its default thread count (prediction misses), and
// when the stream re-converges on the same oracle, predictions resume.
func TestChaosDivergenceFallback(t *testing.T) {
	runWithDeadline(t, func() {
		m := ompsim.Pudding()
		const size, errSeed = 10, 13
		steps := apps.LuleshSteps(size)

		rec := pythia.NewRecordOracle()
		rt := ompsim.New(ompsim.Config{MaxThreads: m.Cores, Machine: &m, Oracle: rec})
		apps.RunLuleshOMP(rt, size, steps)
		rt.Close()
		ts, err := rec.Finish()
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := pythia.NewPredictOracle(ts, pythia.Config{})
		if err != nil {
			t.Fatal(err)
		}

		replay := func(errRate float64) ompsim.Stats {
			rt := ompsim.New(ompsim.Config{
				MaxThreads: m.Cores, Machine: &m, Oracle: oracle,
				Adaptive: true, ErrorRate: errRate, Seed: errSeed,
			})
			apps.RunLuleshOMP(rt, size, steps)
			defer rt.Close()
			return rt.Stats()
		}

		noisy := replay(0.97)
		if noisy.PredictionMisses <= noisy.Predictions/2 {
			t.Fatalf("divergence did not force fallback: %d misses of %d queries",
				noisy.PredictionMisses, noisy.Predictions)
		}
		if h := oracle.Health(); h.QuarantinedThreads == 0 && h.State == pythia.Healthy {
			t.Fatalf("oracle still Healthy after 97%% noise: %+v", h)
		}

		// Same oracle, stream re-converges: predictions must resume.
		clean := replay(0)
		if clean.PredictionMisses >= clean.Predictions/2 {
			t.Fatalf("re-converged replay still mostly misses: %d of %d",
				clean.PredictionMisses, clean.Predictions)
		}
	})
}
