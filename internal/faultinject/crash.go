package faultinject

// Crash-point injection (this file): deterministic process-death scheduling
// for chaos-testing the checkpoint journal. A CrashSpec names one of the
// tracefile crash points ("save.wrote-temp", "journal.wrote-gen", ...) and
// which hit of it should kill the process; Hook turns the spec into a
// tracefile.SetCrashHook callback that counts hits, optionally tears the
// file it is handed (simulating a write that died mid-sector instead of a
// clean kill), and exits with CrashExitCode. Recovery code is then pointed
// at whatever the dead process left behind.

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// CrashExitCode is the exit status of a process killed by an injected
// crash; distinctive on purpose so a harness can tell an injected death
// from a real one.
const CrashExitCode = 86

// CrashSpec schedules one injected process death.
type CrashSpec struct {
	// Point is the tracefile crash point name (tracefile.CrashSave*,
	// tracefile.CrashJournal*).
	Point string
	// Nth is which hit of Point dies, 1-based.
	Nth int
	// Tear, when set, truncates and corrupts the file the crash point
	// reports before dying — a torn write rather than a clean kill.
	Tear bool
}

// ParseCrashSpec parses "point@n" or "point@n+tear", e.g.
// "save.wrote-temp@2" or "journal.wrote-gen@1+tear".
func ParseCrashSpec(s string) (CrashSpec, error) {
	var spec CrashSpec
	point, rest, ok := strings.Cut(s, "@")
	if !ok || point == "" {
		return spec, fmt.Errorf("faultinject: crash spec %q: want point@n[+tear]", s)
	}
	nth, tear := rest, false
	if cut, found := strings.CutSuffix(rest, "+tear"); found {
		nth, tear = cut, true
	}
	n, err := strconv.Atoi(nth)
	if err != nil || n < 1 {
		return spec, fmt.Errorf("faultinject: crash spec %q: bad hit count %q", s, nth)
	}
	return CrashSpec{Point: point, Nth: n, Tear: tear}, nil
}

// String renders the spec in ParseCrashSpec syntax.
func (c CrashSpec) String() string {
	s := fmt.Sprintf("%s@%d", c.Point, c.Nth)
	if c.Tear {
		s += "+tear"
	}
	return s
}

// Hook returns a callback for tracefile.SetCrashHook implementing the spec:
// on the Nth hit of Point the process dies with CrashExitCode, after
// tearing the reported file when the spec says so. Other points and other
// hits pass through untouched. The hook is safe for concurrent hits.
func (c CrashSpec) Hook() func(point, path string) {
	var hits atomic.Int64
	return func(point, path string) {
		if point != c.Point {
			return
		}
		if hits.Add(1) != int64(c.Nth) {
			return
		}
		if c.Tear {
			// Best-effort: a crash injector must die even if tearing fails.
			_ = TearFile(path, int64(c.Nth))
		}
		os.Exit(CrashExitCode)
	}
}

// TearFile simulates a write torn by power loss: the file is truncated to a
// seed-chosen length and, if anything remains, its final byte is flipped.
func TearFile(path string, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	torn := TruncateBytes(data, seed)
	if len(torn) > 0 {
		rng := rand.New(rand.NewSource(seed))
		torn[len(torn)-1] ^= byte(1 + rng.Intn(255))
	}
	return os.WriteFile(path, torn, 0o666)
}
