package faultinject_test

// Crash chaos: every test in this file kills a real recording process —
// with an injected os.Exit at a chosen point of the checkpoint write path,
// or with an actual SIGKILL — and then salvages whatever the corpse left in
// the journal directory. The assertions are the durability contract:
// committed generations survive any crash, a torn write is detected and
// skipped, and a salvaged trace drives a predicting oracle.

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/tracefile"
	"repro/pythia"
)

func TestParseCrashSpec(t *testing.T) {
	good := map[string]faultinject.CrashSpec{
		"save.wrote-temp@2":        {Point: "save.wrote-temp", Nth: 2},
		"journal.wrote-gen@1+tear": {Point: "journal.wrote-gen", Nth: 1, Tear: true},
	}
	for in, want := range good {
		got, err := faultinject.ParseCrashSpec(in)
		if err != nil {
			t.Fatalf("ParseCrashSpec(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseCrashSpec(%q) = %+v, want %+v", in, got, want)
		}
		if got.String() != in {
			t.Fatalf("round trip of %q: %q", in, got.String())
		}
	}
	for _, in := range []string{"", "@1", "point", "point@", "point@0", "point@x", "point@1+teat"} {
		if _, err := faultinject.ParseCrashSpec(in); err == nil {
			t.Fatalf("ParseCrashSpec(%q) accepted", in)
		}
	}
}

// TestCrashHelperProcess is not a test: it is the victim. Re-executed as a
// subprocess by the crash tests, it records with checkpointing enabled and
// an injected crash (from PYTHIA_CRASH_SPEC) or, in kill mode, records
// until the parent SIGKILLs it.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv("PYTHIA_CRASH_HELPER") != "1" {
		t.Skip("helper process, not a test")
	}
	dir := os.Getenv("PYTHIA_CRASH_DIR")
	if spec := os.Getenv("PYTHIA_CRASH_SPEC"); spec != "" {
		cs, err := faultinject.ParseCrashSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		tracefile.SetCrashHook(cs.Hook())
	}
	var now int64
	o := pythia.NewRecordOracle(
		pythia.WithClock(func() int64 { now += 5; return now }),
		pythia.WithCheckpoint(pythia.CheckpointConfig{Dir: dir, EveryEvents: 128}),
	)
	a := o.Intern("phaseA")
	b := o.Intern("phaseB")
	th := o.Thread(0)
	// Enough rounds that kill mode gives the parent plenty of committed
	// generations to shoot at; injected crashes die long before the end.
	for i := 0; i < 4000; i++ {
		for j := 0; j < 64; j++ {
			th.Submit(a)
			th.Submit(b)
		}
		// Give the background checkpointer air between bursts so kill mode
		// does not finish before the parent pulls the trigger.
		time.Sleep(time.Millisecond)
	}
	if err := o.FinishAndSave(filepath.Join(dir, "final.pythia")); err != nil {
		t.Fatal(err)
	}
}

// helperCmd builds the re-exec command for the victim process.
func helperCmd(t *testing.T, dir, spec string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"PYTHIA_CRASH_HELPER=1",
		"PYTHIA_CRASH_DIR="+dir,
		"PYTHIA_CRASH_SPEC="+spec,
	)
	return cmd
}

// exitCode extracts the subprocess exit status.
func exitCode(err error) int {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	if err == nil {
		return 0
	}
	return -1
}

func TestCrashAtEveryPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash matrix is not -short material")
	}
	cases := []struct {
		spec string
		// wantGen is the generation recovery must land on (0: recovery must
		// fail with ErrNoRecoverableGeneration).
		wantGen uint64
		// wantSkip is how many newer generations recovery must skip.
		wantSkip int
	}{
		// Death before anything of generation 1 was written durably.
		{spec: tracefile.CrashSaveCreatedTemp + "@1", wantGen: 0},
		// Temp file fully written and fsynced but never renamed: still not
		// a committed generation, and the .tmp must not confuse recovery.
		{spec: tracefile.CrashSaveWroteTemp + "@1", wantGen: 0},
		// Renamed into place: generation 1 is durable even though the
		// journal bookkeeping after the rename never ran.
		{spec: tracefile.CrashSaveRenamed + "@1", wantGen: 1},
		// Two committed generations, death right after the second.
		{spec: tracefile.CrashJournalWroteGen + "@2", wantGen: 2},
		// Third generation committed, then torn post-mortem: recovery must
		// detect the damage and fall back to generation 2.
		{spec: tracefile.CrashJournalWroteGen + "@3+tear", wantGen: 2, wantSkip: 1},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			dir := t.TempDir()
			out, err := helperCmd(t, dir, tc.spec).CombinedOutput()
			if code := exitCode(err); code != faultinject.CrashExitCode {
				t.Fatalf("victim exited %d, want %d\n%s", code, faultinject.CrashExitCode, out)
			}
			ts, rep, err := tracefile.Recover(dir)
			if tc.wantGen == 0 {
				if !errors.Is(err, tracefile.ErrNoRecoverableGeneration) {
					t.Fatalf("Recover err = %v, want ErrNoRecoverableGeneration", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Recover: %v (report %+v)", err, rep)
			}
			if rep.Used.Generation != tc.wantGen {
				t.Fatalf("recovered generation %d, want %d (skipped %+v)", rep.Used.Generation, tc.wantGen, rep.Skipped)
			}
			if len(rep.Skipped) != tc.wantSkip {
				t.Fatalf("skipped %+v, want %d entries", rep.Skipped, tc.wantSkip)
			}
			assertSalvageable(t, ts)
		})
	}
}

func TestSIGKILLDuringRecording(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill test is not -short material")
	}
	dir := t.TempDir()
	cmd := helperCmd(t, dir, "") // no injected crash: a real signal
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until at least one generation is committed, then kill without
	// any chance for cleanup.
	deadline := time.Now().Add(30 * time.Second)
	for {
		sts, err := tracefile.ScanJournal(dir)
		if err == nil && len(sts) > 0 && sts[len(sts)-1].Err == "" {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("victim never committed a generation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("victim exit: %v, want SIGKILL death", err)
	}

	ts, rep, err := tracefile.Recover(dir)
	if err != nil {
		t.Fatalf("Recover after SIGKILL: %v (report %+v)", err, rep)
	}
	if rep.Used == nil || rep.Used.Events == 0 {
		t.Fatalf("empty recovery: %+v", rep.Used)
	}
	assertSalvageable(t, ts)
}

// assertSalvageable checks the durability contract on a recovered trace:
// marked truncated + salvaged, and good enough to drive a predicting
// oracle through a full pass of its own recorded sequence.
func assertSalvageable(t *testing.T, ts *pythia.TraceSet) {
	t.Helper()
	if ts.Provenance == nil || !ts.Provenance.Salvaged {
		t.Fatalf("recovered trace lacks salvaged provenance: %+v", ts.Provenance)
	}
	th := ts.Threads[0]
	if th == nil || !th.Truncated {
		t.Fatal("recovered thread missing or not marked truncated")
	}
	o, err := pythia.NewPredictOracle(ts, pythia.Config{})
	if err != nil {
		t.Fatalf("predict oracle from salvaged trace: %v", err)
	}
	seq := th.Grammar.Unfold()
	if len(seq) == 0 {
		t.Fatal("salvaged grammar unfolds to nothing")
	}
	pth := o.Thread(0)
	pth.StartAtBeginning()
	hits := 0
	for _, e := range seq {
		if pred, ok := pth.PredictAt(1); ok && pred.EventID == e {
			hits++
		}
		pth.Submit(pythia.ID(e))
	}
	if hits < len(seq)*9/10 {
		t.Fatalf("salvaged trace predicts %d/%d of its own run", hits, len(seq))
	}
}
