// Package faultinject provides deterministic, seed-driven fault schedules
// for chaos-testing the oracle. Two fault families mirror the two ways a
// deployment can hurt Pythia: event-stream faults (dropped, duplicated, or
// substituted events and skewed clocks — an instrumented runtime
// misbehaving) and byte-level trace-file faults (corruption and truncation
// — a trace file damaged between record and predict). Every schedule is a
// pure function of an explicit seed, so a failing chaos run is replayable
// from the seed in its log line.
package faultinject

import "math/rand"

// Plan describes one deterministic event-stream fault schedule. Rates are
// independent per-event probabilities in [0, 1], applied in the order
// drop, duplicate, substitute.
type Plan struct {
	// Seed drives the schedule; equal plans produce equal fault sequences.
	Seed int64
	// Drop is the probability an event is silently swallowed.
	Drop float64
	// Duplicate is the probability an event is delivered twice.
	Duplicate float64
	// Substitute is the probability an event is replaced by another id.
	Substitute float64
	// Alphabet is the candidate pool for substituted events. When empty,
	// substitution invents ids far outside any interned range, modelling an
	// instrumentation layer emitting garbage.
	Alphabet []int32
	// MaxSkewNs bounds the absolute per-event clock perturbation.
	MaxSkewNs int64
}

// Injector applies a Plan to an event stream.
type Injector struct {
	plan Plan
	rng  *rand.Rand
}

// New returns an Injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Perturb maps one source event to the faulted events actually delivered:
// nil (dropped), the event itself, the event twice, or a substitute.
func (in *Injector) Perturb(id int32) []int32 {
	p := &in.plan
	if p.Drop > 0 && in.rng.Float64() < p.Drop {
		return nil
	}
	if p.Substitute > 0 && in.rng.Float64() < p.Substitute {
		id = in.substitute()
	}
	if p.Duplicate > 0 && in.rng.Float64() < p.Duplicate {
		return []int32{id, id}
	}
	return []int32{id}
}

// substitute picks a replacement event id.
func (in *Injector) substitute() int32 {
	if len(in.plan.Alphabet) > 0 {
		return in.plan.Alphabet[in.rng.Intn(len(in.plan.Alphabet))]
	}
	// An id no real registry will have interned.
	return 1 << 28 << uint(in.rng.Intn(3))
}

// Apply runs the whole stream through Perturb.
func (in *Injector) Apply(ids []int32) []int32 {
	out := make([]int32, 0, len(ids))
	for _, id := range ids {
		out = append(out, in.Perturb(id)...)
	}
	return out
}

// Skew perturbs a timestamp by a uniform amount in [-MaxSkewNs, MaxSkewNs].
func (in *Injector) Skew(now int64) int64 {
	if in.plan.MaxSkewNs <= 0 {
		return now
	}
	return now + in.rng.Int63n(2*in.plan.MaxSkewNs+1) - in.plan.MaxSkewNs
}

// PanicClock returns a clock that returns monotonically increasing
// timestamps for n calls and panics on every call after that — a
// deterministic internal fault for exercising panic containment end to
// end (the clock runs inside the oracle's Submit path).
func PanicClock(n int) func() int64 {
	var calls, now int64
	return func() int64 {
		calls++
		if calls > int64(n) {
			panic("faultinject: scheduled clock fault")
		}
		now += 7
		return now
	}
}

// FlipBytes returns a copy of data with n seed-chosen bytes replaced by
// seed-chosen values (each flip guaranteed to change the byte).
func FlipBytes(data []byte, seed int64, n int) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(out))
		out[pos] ^= byte(1 + rng.Intn(255))
	}
	return out
}

// TruncateBytes returns a seed-chosen strict prefix of data.
func TruncateBytes(data []byte, seed int64) []byte {
	if len(data) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	return append([]byte(nil), data[:rng.Intn(len(data))]...)
}
