package faultinject_test

// Promotion crash chaos: like crash_test.go, but the victim is a *learning*
// session whose generation journal is written by promotions and rollbacks,
// not by a record-mode checkpointer. Every committed generation must
// survive any death — injected at each point of the journal write path or a
// real SIGKILL mid-promotion — and recovery must land on the newest
// committed generation with its lineage provenance intact, so a restarted
// learner continues the generation sequence instead of resurrecting a
// stale model.

import (
	"errors"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/tracefile"
	"repro/pythia"
)

// learnVictimRef builds the victim's initial serving model: a trace of the
// pre-drift pattern.
func learnVictimRef(t *testing.T) *pythia.TraceSet {
	t.Helper()
	var now int64
	o := pythia.NewRecordOracle(pythia.WithClock(func() int64 { now += 5; return now }))
	ids := []pythia.ID{o.Intern("a"), o.Intern("b"), o.Intern("c"), o.Intern("d")}
	th := o.Thread(0)
	for i := 0; i < 100; i++ {
		for _, id := range ids {
			th.Submit(id)
		}
	}
	ts, err := o.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestLearnCrashHelperProcess is the victim: a learning session journaling
// to PYTHIA_CRASH_DIR that alternates forced promotions and rollbacks of
// its drifted shadow model, so the journal write path is exercised once per
// operation at deterministic generation numbers (seed=1, then 2, 3, ... one
// per forced operation). Scored transitions are disabled by an unreachable
// promotion streak, keeping the crash-point hit count deterministic.
func TestLearnCrashHelperProcess(t *testing.T) {
	if os.Getenv("PYTHIA_CRASH_HELPER") != "2" {
		t.Skip("helper process, not a test")
	}
	dir := os.Getenv("PYTHIA_CRASH_DIR")
	if spec := os.Getenv("PYTHIA_CRASH_SPEC"); spec != "" {
		cs, err := faultinject.ParseCrashSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		tracefile.SetCrashHook(cs.Hook())
	}
	pol := pythia.LearnPolicy{EpochEvents: 64, PromoteEpochs: 1 << 30, Dir: dir}
	o, err := pythia.NewPredictOracle(learnVictimRef(t), pythia.Config{}, pythia.WithOnlineLearning(pol))
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	drift := []pythia.ID{o.Lookup("d"), o.Lookup("c"), o.Lookup("b"), o.Lookup("a")}
	th := o.Thread(0)
	for round := 0; round < 4000; round++ {
		// Enough events that the shadow recorder has offered a snapshot, so
		// the forced promotion always has a candidate.
		for i := 0; i < 24; i++ {
			for _, id := range drift {
				th.Submit(id)
			}
		}
		if _, err := o.Promote(); err != nil {
			t.Fatalf("round %d: Promote: %v", round, err)
		}
		if _, err := o.Rollback(); err != nil {
			t.Fatalf("round %d: Rollback: %v", round, err)
		}
		// Pace kill mode so the parent can aim between operations.
		time.Sleep(time.Millisecond)
	}
}

// learnHelperCmd builds the re-exec command for the learning victim.
func learnHelperCmd(t *testing.T, dir, spec string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestLearnCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"PYTHIA_CRASH_HELPER=2",
		"PYTHIA_CRASH_DIR="+dir,
		"PYTHIA_CRASH_SPEC="+spec,
	)
	return cmd
}

// assertLearnRecovery checks the recovered generation carries consistent
// lineage provenance and restarts a learning session that continues the
// generation sequence past the crash.
func assertLearnRecovery(t *testing.T, dir string, ts *pythia.TraceSet, rep *tracefile.RecoveryReport) {
	t.Helper()
	p := ts.Provenance
	if p == nil || !p.Salvaged {
		t.Fatalf("recovered generation lacks salvaged provenance: %+v", p)
	}
	if p.Generation != rep.Used.Generation {
		t.Fatalf("provenance generation %d != recovered %d", p.Generation, rep.Used.Generation)
	}
	if p.Kind != model.ProvCheckpoint && p.Parent >= p.Generation {
		t.Fatalf("generation %d lineage points forward to parent %d", p.Generation, p.Parent)
	}
	// A restarted learner must mint strictly past everything on disk —
	// including generations recovery skipped as damaged.
	pol := pythia.LearnPolicy{EpochEvents: 64, PromoteEpochs: 1 << 30, Dir: dir}
	o, err := pythia.NewPredictOracle(ts, pythia.Config{}, pythia.WithOnlineLearning(pol))
	if err != nil {
		t.Fatalf("restarting learner from recovered generation: %v", err)
	}
	defer o.Close()
	if got := o.ModelInfo().ServingGeneration; got <= rep.Used.Generation {
		t.Fatalf("restarted learner minted generation %d, want above recovered %d", got, rep.Used.Generation)
	}
}

func TestCrashDuringPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash matrix is not -short material")
	}
	// Journal write numbering in the victim: hit 1 is the seed generation,
	// hit 2 the first promotion (generation 2), hit 3 the first rollback
	// (generation 3), and so on alternating.
	cases := []struct {
		spec     string
		wantGen  uint64
		wantKind model.ProvKind
		wantSkip int
	}{
		// Death right after the first promotion committed: the promoted
		// model is the newest durable generation.
		{spec: tracefile.CrashJournalWroteGen + "@2", wantGen: 2, wantKind: model.ProvPromotion},
		// Death after the first rollback committed: the rollback itself is
		// durable, carrying the restored content under a fresh number.
		{spec: tracefile.CrashJournalWroteGen + "@3", wantGen: 3, wantKind: model.ProvRollback},
		// The second promotion's temp file was written but never renamed:
		// not committed, recovery lands on the rollback before it.
		{spec: tracefile.CrashSaveWroteTemp + "@4", wantGen: 3, wantKind: model.ProvRollback},
		// The second promotion committed but was torn post-mortem: recovery
		// must detect the damage and fall back one generation.
		{spec: tracefile.CrashJournalWroteGen + "@4+tear", wantGen: 3, wantKind: model.ProvRollback, wantSkip: 1},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			dir := t.TempDir()
			out, err := learnHelperCmd(t, dir, tc.spec).CombinedOutput()
			if code := exitCode(err); code != faultinject.CrashExitCode {
				t.Fatalf("victim exited %d, want %d\n%s", code, faultinject.CrashExitCode, out)
			}
			ts, rep, err := tracefile.Recover(dir)
			if err != nil {
				t.Fatalf("Recover: %v (report %+v)", err, rep)
			}
			if rep.Used.Generation != tc.wantGen {
				t.Fatalf("recovered generation %d, want %d (skipped %+v)", rep.Used.Generation, tc.wantGen, rep.Skipped)
			}
			if len(rep.Skipped) != tc.wantSkip {
				t.Fatalf("skipped %+v, want %d entries", rep.Skipped, tc.wantSkip)
			}
			if ts.Provenance.Kind != tc.wantKind {
				t.Fatalf("recovered generation kind %v, want %v", ts.Provenance.Kind, tc.wantKind)
			}
			assertLearnRecovery(t, dir, ts, rep)
		})
	}
}

func TestSIGKILLDuringPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill test is not -short material")
	}
	dir := t.TempDir()
	cmd := learnHelperCmd(t, dir, "") // no injected crash: a real signal
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until promotions are flowing (at least three committed
	// generations: seed, promotion, rollback), then kill with no cleanup.
	deadline := time.Now().Add(30 * time.Second)
	for {
		sts, err := tracefile.ScanJournal(dir)
		committed := 0
		if err == nil {
			for _, st := range sts {
				if st.Err == "" {
					committed++
				}
			}
		}
		if committed >= 3 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("victim never committed a promotion")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("victim exit: %v, want SIGKILL death", err)
	}

	ts, rep, err := tracefile.Recover(dir)
	if err != nil {
		t.Fatalf("Recover after SIGKILL: %v (report %+v)", err, rep)
	}
	if rep.Used == nil || rep.Used.Generation < 2 {
		t.Fatalf("recovery did not land past the seed: %+v", rep.Used)
	}
	assertLearnRecovery(t, dir, ts, rep)
}
