// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (section III) at benchmark scale — one benchmark per
// table/figure, plus the ablations called out in DESIGN.md. Custom metrics
// (b.ReportMetric) carry the headline number of each experiment so `go test
// -bench . -benchmem` doubles as a results report:
//
//	BenchmarkTable1_RecordOverhead     overhead-pct
//	BenchmarkFig8_Accuracy             accuracy-pct (x=64, large vs small trace)
//	BenchmarkFig9_PredictionCost       µs-per-query at x=64
//	BenchmarkFig10/11/12/13            improvement-pct of Predict vs Vanilla
//	BenchmarkFig14_ErrorResilience     slowdown-pct at error rate 0.8 vs clean
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/grammar"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/ompsim"
	"repro/internal/predictor"
	"repro/pythia"
)

// BenchmarkTable1_RecordOverhead measures PYTHIA-RECORD's overhead on a
// representative regular (BT) and irregular (Quicksilver) application, the
// Table I experiment at benchmark scale. The medium working set keeps the
// compute-to-event ratio representative (the small class is event-dense and
// overstates the relative cost; the full Table I uses large — see
// `pythia-bench -experiment table1`).
func BenchmarkTable1_RecordOverhead(b *testing.B) {
	for _, name := range []string{"BT", "Quicksilver"} {
		b.Run(name, func(b *testing.B) {
			app, err := apps.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var vanilla, recorded int64
			for i := 0; i < b.N; i++ {
				vanilla += int64(harness.RunMPIApp(app, apps.Medium, false, 42).Wall)
				recorded += int64(harness.RunMPIApp(app, apps.Medium, true, 42).Wall)
			}
			if vanilla > 0 {
				b.ReportMetric((float64(recorded)/float64(vanilla)-1)*100, "overhead-pct")
			}
		})
	}
}

// BenchmarkFig7_BTGrammar regenerates the BT grammar extraction.
func BenchmarkFig7_BTGrammar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := harness.Fig7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8_Accuracy measures prediction accuracy at distance 64 when a
// small-class BT trace predicts a large-class run (the Fig. 8 protocol).
func BenchmarkFig8_Accuracy(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig8(harness.Fig8Config{
			Apps: []string{"BT"}, Distances: []int{64}, MaxSamplesPerRank: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Class == apps.Large {
				acc = r.Accuracy
			}
		}
	}
	b.ReportMetric(acc*100, "accuracy-pct")
}

// BenchmarkFig9_PredictionCost measures the mean cost of one oracle query at
// distance 64 on the CG large working set.
func BenchmarkFig9_PredictionCost(b *testing.B) {
	var cost float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig9(harness.Fig9Config{
			Apps: []string{"CG"}, Distances: []int{64}, MaxSamples: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		cost = float64(rows[len(rows)-1].MeanCost) / 1e3
	}
	b.ReportMetric(cost, "us-per-query")
}

// BenchmarkFig10_LuleshProblemSizePudding regenerates the problem-size sweep
// on the 24-core model; the reported metric is the improvement at s=30.
func BenchmarkFig10_LuleshProblemSizePudding(b *testing.B) {
	benchLuleshSweep(b, ompsim.Pudding(), false)
}

// BenchmarkFig11_LuleshProblemSizePixel is Fig. 10 on the 16-core model.
func BenchmarkFig11_LuleshProblemSizePixel(b *testing.B) {
	benchLuleshSweep(b, ompsim.Pixel(), false)
}

// BenchmarkFig12_LuleshMaxThreadsPudding regenerates the max-thread sweep at
// s=30 on the 24-core model.
func BenchmarkFig12_LuleshMaxThreadsPudding(b *testing.B) {
	benchLuleshSweep(b, ompsim.Pudding(), true)
}

// BenchmarkFig13_LuleshMaxThreadsPixel is Fig. 12 on the 16-core model.
func BenchmarkFig13_LuleshMaxThreadsPixel(b *testing.B) {
	benchLuleshSweep(b, ompsim.Pixel(), true)
}

func benchLuleshSweep(b *testing.B, m ompsim.MachineModel, threadSweep bool) {
	var imp float64
	for i := 0; i < b.N; i++ {
		var pts []harness.LuleshPoint
		if threadSweep {
			pts = harness.Fig12(m)
			imp = pts[len(pts)-1].ImprovementPct
		} else {
			pts = harness.Fig10(m)
			for _, p := range pts {
				if p.X == 30 {
					imp = p.ImprovementPct
				}
			}
		}
	}
	b.ReportMetric(imp, "improvement-pct")
}

// BenchmarkFig14_ErrorResilience regenerates the error-rate sweep; the
// metric is the slowdown of the 0.8-error-rate run relative to the clean
// adaptive run.
func BenchmarkFig14_ErrorResilience(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		rows := harness.Fig14(2)
		var clean, noisy int64
		for _, r := range rows {
			if r.ErrorRate == 0 {
				clean = r.PredictNs
			}
			if r.ErrorRate == 0.8 {
				noisy = r.PredictNs
			}
		}
		if clean > 0 {
			slowdown = (float64(noisy)/float64(clean) - 1) * 100
		}
	}
	b.ReportMetric(slowdown, "slowdown-pct")
}

// BenchmarkAblation_RunLengthVsPlain compares Pythia's run-length grammar
// engine with plain Sequitur on a loop-heavy trace (DESIGN.md ablation 1).
// The metric is the rule-count ratio plain/run-length.
func BenchmarkAblation_RunLengthVsPlain(b *testing.B) {
	var seq []int32
	for i := 0; i < 3000; i++ {
		seq = append(seq, 0, 0, 0, 1, 2, 2)
	}
	b.Run("run-length", func(b *testing.B) {
		b.ReportAllocs()
		var rules int
		for i := 0; i < b.N; i++ {
			g := grammar.New()
			for _, e := range seq {
				g.Append(e)
			}
			rules = g.RuleCount()
		}
		b.ReportMetric(float64(rules), "rules")
	})
	b.Run("plain-sequitur", func(b *testing.B) {
		b.ReportAllocs()
		var rules int
		for i := 0; i < b.N; i++ {
			g := grammar.NewPlain()
			for _, e := range seq {
				g.Append(e)
			}
			rules = g.RuleCount()
		}
		b.ReportMetric(float64(rules), "rules")
	})
}

// BenchmarkAblation_CandidateCap sweeps the partial-progress hypothesis cap
// (DESIGN.md ablation 2): accuracy under noisy tracking vs query cost.
func BenchmarkAblation_CandidateCap(b *testing.B) {
	// Phases share the "0 1" prefix but diverge afterwards, so re-anchoring
	// on event 0 is genuinely ambiguous and the hypothesis cap matters.
	var seq []int32
	for rep := 0; rep < 30; rep++ {
		for _, tail := range []int32{2, 3, 4, 5} {
			for i := 0; i < 6; i++ {
				seq = append(seq, 0, 1, tail, tail)
			}
		}
	}
	g := grammar.New()
	for _, e := range seq {
		g.Append(e)
	}
	tr := &model.Trace{Grammar: g.Freeze(), Events: []string{"a", "b", "c", "d", "e", "f"}}

	const dist = 3
	for _, maxCand := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("cap-%d", maxCand), func(b *testing.B) {
			var correct, total int
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(11))
				p := predictor.New(tr, predictor.Config{MaxCandidates: maxCand, MaxLookahead: maxCand * 4})
				correct, total = 0, 0
				for j := 0; j < len(seq)-dist; j++ {
					if rng.Float64() < 0.15 {
						p.Observe(99) // unexpected event: forces re-anchoring
					}
					p.Observe(seq[j])
					if pred, ok := p.PredictAt(dist); ok {
						total++
						if pred.EventID == seq[j+dist] {
							correct++
						}
					}
				}
			}
			if total > 0 {
				b.ReportMetric(100*float64(correct)/float64(total), "accuracy-pct")
			}
		})
	}
}

// BenchmarkAblation_TimingGranularity compares duration prediction with the
// full per-context timing model against the context-free per-event fallback
// (DESIGN.md ablation 3). The workload has one event occurring in two
// contexts with durations differing by 100x; the metric is the relative
// error of the predicted duration of the fast context.
func BenchmarkAblation_TimingGranularity(b *testing.B) {
	// a b(10ns) c | a b(1000ns) d, repeated.
	var now int64
	rec := pythia.NewRecordOracle(pythia.WithClock(func() int64 { return now }))
	a, bb, c, d := rec.Intern("a"), rec.Intern("b"), rec.Intern("c"), rec.Intern("d")
	th := rec.Thread(0)
	for i := 0; i < 100; i++ {
		th.SubmitAt(a, now)
		now += 10
		th.SubmitAt(bb, now)
		now += 5
		th.SubmitAt(c, now)
		now += 5
		th.SubmitAt(a, now)
		now += 1000
		th.SubmitAt(bb, now)
		now += 5
		th.SubmitAt(d, now)
		now += 5
	}
	ts, err := rec.Finish()
	if err != nil {
		b.Fatal(err)
	}

	measure := func(b *testing.B, strip bool) {
		tr := ts.Trace(0)
		if strip {
			stripped := model.NewTiming()
			stripped.ByEvent = tr.Timing.ByEvent
			tr = &model.Trace{Grammar: tr.Grammar, Events: tr.Events, Timing: stripped}
		}
		var errPct float64
		for i := 0; i < b.N; i++ {
			p := predictor.New(tr, predictor.Config{})
			p.StartAtBeginning()
			// Walk into the fast context: a (first of the cycle).
			p.Observe(int32(a))
			pred, ok := p.PredictDurationUntil(int32(bb), 4)
			if !ok {
				b.Fatal("no duration prediction")
			}
			errPct = (pred.ExpectedNs - 10) / 10 * 100
		}
		b.ReportMetric(errPct, "duration-err-pct")
	}
	b.Run("per-context", func(b *testing.B) { measure(b, false) })
	b.Run("per-event-only", func(b *testing.B) { measure(b, true) })
}

// --- hot-path microbenchmarks ----------------------------------------------
//
// The three per-event paths a runtime system exercises on every key point:
// Submit (record mode), Observe (predict mode) and Observe+PredictAt (the
// steady-state oracle query loop). scripts/bench.sh runs these and writes the
// perf-trajectory point BENCH_PR2.json; CI runs them at -benchtime=1x so the
// code cannot rot.

// hotpathTrace builds a reference trace over the repetitive motif the other
// hot-path benchmarks replay (run-length-friendly, like a real iterative app).
func hotpathTrace(reps int) ([]int32, *model.Trace) {
	var seq []int32
	for i := 0; i < reps; i++ {
		seq = append(seq, 0, 1, 2, 1, 2, 3)
	}
	g := grammar.New()
	for _, e := range seq {
		g.Append(e)
	}
	names := []string{"a", "b", "c", "d"}
	return seq, &model.Trace{Grammar: g.Freeze(), Events: names}
}

// BenchmarkSubmitThroughput measures the record-mode per-event cost
// (Thread.Submit -> recorder -> grammar append, the Table I hot path).
func BenchmarkSubmitThroughput(b *testing.B) {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	ids := []pythia.ID{
		o.Intern("a"), o.Intern("b"), o.Intern("c"), o.Intern("d"),
	}
	motif := []pythia.ID{ids[0], ids[1], ids[2], ids[1], ids[2], ids[3]}
	th := o.Thread(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Submit(motif[i%len(motif)])
	}
}

// BenchmarkSubmitCheckpointed is BenchmarkSubmitThroughput with crash-safe
// checkpointing enabled: the per-event cost must be indistinguishable — the
// snapshot cadence amortizes the Freeze and all journal I/O happens on the
// background writer, never on the Submit path.
func BenchmarkSubmitCheckpointed(b *testing.B) {
	o := pythia.NewRecordOracle(
		pythia.WithoutTimestamps(),
		pythia.WithCheckpoint(pythia.CheckpointConfig{
			Dir:         b.TempDir(),
			EveryEvents: 50_000,
		}),
	)
	ids := []pythia.ID{
		o.Intern("a"), o.Intern("b"), o.Intern("c"), o.Intern("d"),
	}
	motif := []pythia.ID{ids[0], ids[1], ids[2], ids[1], ids[2], ids[3]}
	th := o.Thread(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Submit(motif[i%len(motif)])
	}
}

// BenchmarkSubmitLearning is BenchmarkSubmitThroughput on an always-on
// learning oracle: every Submit feeds both the serving predictor and the
// shadow recorder, and the epoch scorer runs concurrently on the manager
// goroutine. The per-event cost must stay within a few percent of the sum
// of the two paths it drives (record-mode Submit + predict-mode Observe) —
// candidate materialization, scoring and promotion all happen off the
// Submit path, and the steady-state loop must not allocate.
func BenchmarkSubmitLearning(b *testing.B) {
	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	names := []string{"a", "b", "c", "d"}
	recMotif := []pythia.ID{
		rec.Intern(names[0]), rec.Intern(names[1]), rec.Intern(names[2]),
		rec.Intern(names[1]), rec.Intern(names[2]), rec.Intern(names[3]),
	}
	rt := rec.Thread(0)
	for i := 0; i < 6*1000; i++ {
		rt.Submit(recMotif[i%len(recMotif)])
	}
	ts, err := rec.Finish()
	if err != nil {
		b.Fatal(err)
	}
	o, err := pythia.NewPredictOracle(ts, pythia.Config{},
		pythia.WithOnlineLearning(pythia.LearnPolicy{}, pythia.WithoutTimestamps()))
	if err != nil {
		b.Fatal(err)
	}
	motif := []pythia.ID{
		o.Intern(names[0]), o.Intern(names[1]), o.Intern(names[2]),
		o.Intern(names[1]), o.Intern(names[2]), o.Intern(names[3]),
	}
	th := o.Thread(0)
	th.StartAtBeginning()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Submit(motif[i%len(motif)])
	}
}

// BenchmarkObserveThroughput measures the predict-mode per-event tracking
// cost on a faithful replay (single anchored hypothesis, no queries).
func BenchmarkObserveThroughput(b *testing.B) {
	seq, tr := hotpathTrace(1000)
	p := predictor.New(tr, predictor.Config{})
	p.StartAtBeginning()
	j := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j == len(seq) {
			j = 0
			p.StartAtBeginning()
		}
		p.Observe(seq[j])
		j++
	}
}

// BenchmarkPredictAtCached measures the steady-state oracle loop: one
// Observe plus one PredictAt(64) per event on a faithful replay — the
// amortized-O(1) case the incremental prediction cache targets.
func BenchmarkPredictAtCached(b *testing.B) {
	const dist = 64
	seq, tr := hotpathTrace(1000)
	p := predictor.New(tr, predictor.Config{})
	p.StartAtBeginning()
	j := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j == len(seq)-dist {
			j = 0
			p.StartAtBeginning()
		}
		p.Observe(seq[j])
		j++
		if _, ok := p.PredictAt(dist); !ok {
			b.Fatal("no prediction on a faithful replay")
		}
	}
}

// BenchmarkThreadDispatch measures concurrent Session.Thread lookups of
// already-created threads (the per-event dispatch of a multi-threaded
// runtime).
func BenchmarkThreadDispatch(b *testing.B) {
	o := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	for tid := int32(0); tid < 64; tid++ {
		o.Thread(tid)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		tid := int32(0)
		for pb.Next() {
			o.Thread(tid & 63)
			tid++
		}
	})
}

// BenchmarkAblation_ThreadPoolParking compares the paper's parked worker
// pool against GOMP's default spawn-on-grow behaviour under an oscillating
// adaptive thread count (DESIGN.md ablation 4).
func BenchmarkAblation_ThreadPoolParking(b *testing.B) {
	m := ompsim.Pudding()
	drive := func(b *testing.B, disable bool) {
		var ns int64
		for i := 0; i < b.N; i++ {
			rt := ompsim.New(ompsim.Config{MaxThreads: 24, Machine: &m, DisableParking: disable})
			for j := 0; j < 200; j++ {
				// An adaptive policy oscillates the team size; without
				// parking, every widening re-creates the workers.
				rt.SetNumThreads(24)
				rt.Parallel("wide", 60_000, nil)
				rt.SetNumThreads(1)
				rt.Parallel("narrow", 500, nil)
			}
			ns = rt.Now()
			rt.Close()
		}
		b.ReportMetric(float64(ns)/1e6, "virtual-ms")
	}
	b.Run("parked", func(b *testing.B) { drive(b, false) })
	b.Run("spawn-per-growth", func(b *testing.B) { drive(b, true) })
}
