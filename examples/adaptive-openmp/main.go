// Adaptive OpenMP: the paper's section III-D use case end to end.
//
// A LULESH-like hydrodynamics kernel with 30 parallel regions of wildly
// different sizes runs on the simulated GOMP runtime three times:
//
//  1. Vanilla — every region uses the maximum thread count (GOMP default);
//  2. Record  — same, with PYTHIA-RECORD capturing region events and
//     durations into a trace;
//  3. Predict — the runtime asks PYTHIA-PREDICT for each region's expected
//     duration and picks the thread count from the t1 < t4 < t8 ladder.
//
// Times are on the deterministic virtual clock of a modelled 24-core
// machine (see DESIGN.md), so the run reproduces the paper's trade-off on
// any host.
//
//	go run ./examples/adaptive-openmp
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/ompsim"
	"repro/pythia"
)

func main() {
	machine := ompsim.Pudding()
	const size = 30
	steps := apps.LuleshSteps(size)

	run := func(oracle *pythia.Oracle, adaptive bool) (int64, ompsim.Stats) {
		rt := ompsim.New(ompsim.Config{
			MaxThreads: machine.Cores,
			Machine:    &machine,
			Oracle:     oracle,
			Adaptive:   adaptive,
		})
		defer rt.Close()
		apps.RunLuleshOMP(rt, size, steps)
		return rt.Now(), rt.Stats()
	}

	vanillaNs, _ := run(nil, false)
	fmt.Printf("vanilla  (24 threads everywhere): %8.2f ms\n", float64(vanillaNs)/1e6)

	rec := pythia.NewRecordOracle()
	recordNs, _ := run(rec, false)
	trace, err := rec.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record   (PYTHIA-RECORD attached): %7.2f ms, %d events, %d rules\n",
		float64(recordNs)/1e6, trace.TotalEvents(), trace.TotalRules())

	oracle, err := pythia.NewPredictOracle(trace, pythia.Config{})
	if err != nil {
		log.Fatal(err)
	}
	predictNs, st := run(oracle, true)
	fmt.Printf("predict  (adaptive thread counts): %8.2f ms, mean %.1f threads/region\n",
		float64(predictNs)/1e6, float64(st.ThreadsSum)/float64(st.Regions))

	fmt.Printf("\nimprovement over vanilla: %.1f%% (paper reports up to 38%%)\n",
		(1-float64(predictNs)/float64(vanillaNs))*100)
}
