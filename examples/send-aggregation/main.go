// Send aggregation: the concrete MPI optimisation the paper sketches in
// section III-B — "aggregating multiple successive MPI send messages" —
// implemented for real on the simulated runtime.
//
// A halo-exchange program sends a burst of small messages to its neighbour
// every iteration. On the reference run Pythia records the pattern. On the
// optimised run, the aggregating layer asks the oracle at every Send whether
// more sends to the same destination are coming before the next blocking
// call; while the answer is yes, payloads are held back and the whole burst
// travels as one framed message. The receiver splits transparently.
//
//	go run ./examples/send-aggregation
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/mpisim"
	"repro/pythia"
)

// program sends 8 small boundary strips per iteration, then receives its
// neighbour's strips.
func program(m mpisim.MPI) {
	right := (m.Rank() + 1) % m.Size()
	left := (m.Rank() + m.Size() - 1) % m.Size()
	for iter := 0; iter < 100; iter++ {
		for strip := 0; strip < 8; strip++ {
			m.Send(right, 0, []float64{float64(iter), float64(strip)})
		}
		for strip := 0; strip < 8; strip++ {
			got := m.Recv(left, 0)
			if got[1] != float64(strip) {
				log.Fatalf("strip order corrupted: %v", got)
			}
		}
	}
	m.Barrier()
}

func main() {
	// Reference run: record (the aggregator is inert without predictions).
	rec := pythia.NewRecordOracle(pythia.WithoutTimestamps())
	w := mpisim.NewWorld(4)
	w.RunInterposed(func(m mpisim.MPI) mpisim.MPI {
		return mpisim.NewAggregator(m, rec)
	}, program)
	trace, err := rec.Finish()
	if err != nil {
		log.Fatal(err)
	}

	oracle, err := pythia.NewPredictOracle(trace, pythia.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var mu sync.Mutex
	var layers []*mpisim.Aggregator
	w2 := mpisim.NewWorld(4)
	w2.RunInterposed(func(m mpisim.MPI) mpisim.MPI {
		a := mpisim.NewAggregator(m, oracle)
		a.Lookahead = 6
		mu.Lock()
		layers = append(layers, a)
		mu.Unlock()
		return a
	}, program)

	var payloads, messages int64
	for _, a := range layers {
		payloads += a.PayloadsSent
		messages += a.MessagesSent
	}
	fmt.Printf("logical sends:     %d\n", payloads)
	fmt.Printf("physical messages: %d\n", messages)
	fmt.Printf("aggregation:       %.1fx fewer messages, payloads verified intact\n",
		float64(payloads)/float64(messages))
}
