// I/O prefetch: Pythia as a generic replacement for Omnisc'IO-style
// special-purpose predictors (paper related-work section IV).
//
// A post-processing application sweeps a chunked mesh file every time step,
// interleaving chunk reads with computation. Pythia records the access
// pattern as a grammar on the first run; on later runs the storage layer
// asks the oracle which chunks will be read next and stages them while the
// application computes, hiding the cold-read latency.
//
//	go run ./examples/io-prefetch
package main

import (
	"fmt"
	"log"

	"repro/internal/iosim"
	"repro/pythia"
)

// sweep reads the mesh in the application's (slightly non-trivial) order:
// forward pass over all chunks, then a second pass over the boundary chunks.
func sweep(s *iosim.Store, steps, chunks int) {
	for step := 0; step < steps; step++ {
		for c := 0; c < chunks; c++ {
			s.ReadChunk("mesh.dat", c)
			s.Compute(400_000)
		}
		for _, c := range []int{0, chunks - 1} {
			s.ReadChunk("mesh.dat", c)
			s.Compute(100_000)
		}
		s.Evict()
	}
}

func main() {
	const steps, chunks = 40, 24

	vanilla := iosim.New(iosim.Config{})
	sweep(vanilla, steps, chunks)
	fmt.Printf("vanilla:  %6.1f ms  (%d cold reads)\n",
		float64(vanilla.Now())/1e6, vanilla.Stats().ColdReads)

	rec := pythia.NewRecordOracle()
	recorded := iosim.New(iosim.Config{Oracle: rec})
	sweep(recorded, steps, chunks)
	trace, err := rec.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record:   %6.1f ms  (%d events captured, %d rules)\n",
		float64(recorded.Now())/1e6, trace.TotalEvents(), trace.TotalRules())

	oracle, err := pythia.NewPredictOracle(trace, pythia.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pre := iosim.New(iosim.Config{Oracle: oracle, Prefetch: true})
	sweep(pre, steps, chunks)
	st := pre.Stats()
	fmt.Printf("prefetch: %6.1f ms  (%d of %d reads hidden by %d prefetches)\n",
		float64(pre.Now())/1e6, st.HiddenReads, st.Reads, st.PrefetchsIssued)
	fmt.Printf("\nspeedup over vanilla: %.0f%%\n",
		(1-float64(pre.Now())/float64(vanilla.Now()))*100)
}
