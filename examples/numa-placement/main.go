// NUMA placement: the paper's opening example, closed end to end.
//
// The introduction motivates Pythia with Linux's first-touch policy: a page
// lands on the NUMA node of the thread that touches it first, betting that
// the same thread keeps using it — "however, the heuristic may be wrong".
// This example builds the classic case where it is wrong: one thread
// initialises every page, another does all the work. With a recorded
// reference execution, the memory runtime asks Pythia who will actually use
// each page and places it there instead.
//
//	go run ./examples/numa-placement
package main

import (
	"fmt"
	"log"

	"repro/internal/memsim"
	"repro/pythia"
)

// app: thread 0 initialises a shared array; threads 0..3 then each work on
// their own quarter for many rounds. First touch puts everything on thread
// 0's node.
func app(s *memsim.System, pages, rounds int) {
	for p := 0; p < pages; p++ {
		s.Access(0, int32(p)) // initialisation: all first touches by thread 0
	}
	quarter := pages / 4
	for r := 0; r < rounds; r++ {
		for th := int32(0); th < 4; th++ {
			for p := int(th) * quarter; p < (int(th)+1)*quarter; p++ {
				s.Access(th, int32(p))
			}
			s.Compute(1_000)
		}
	}
}

func main() {
	const pages, rounds = 32, 50

	ft := memsim.New(memsim.Config{})
	app(ft, pages, rounds)
	fmt.Printf("first-touch:  %7.1f µs, %4d of %d accesses remote\n",
		float64(ft.Now())/1e3, ft.Stats().RemoteAccesses, ft.Stats().Accesses)

	rec := pythia.NewRecordOracle()
	recorded := memsim.New(memsim.Config{Oracle: rec})
	app(recorded, pages, rounds)
	trace, err := rec.Finish()
	if err != nil {
		log.Fatal(err)
	}

	oracle, err := pythia.NewPredictOracle(trace, pythia.Config{})
	if err != nil {
		log.Fatal(err)
	}
	// The first work access of a page comes ~32 events after its first
	// touch (the whole initialisation pass sits in between), so the
	// placement decision must look further ahead than the default horizon.
	pred := memsim.New(memsim.Config{Oracle: oracle, Predictive: true, PredictHorizon: 48})
	app(pred, pages, rounds)
	st := pred.Stats()
	fmt.Printf("oracle-placed:%7.1f µs, %4d of %d accesses remote (%d placements overridden)\n",
		float64(pred.Now())/1e3, st.RemoteAccesses, st.Accesses, st.Migrations)
	fmt.Printf("\nspeedup: %.0f%% — the oracle replaces the heuristic the intro warns about\n",
		(1-float64(pred.Now())/float64(ft.Now()))*100)
}
