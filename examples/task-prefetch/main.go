// Task prefetch: Pythia guiding a runtime system that is neither MPI nor
// OpenMP — the genericity claim of the paper's related-work section (unlike
// NLR or Omnisc'IO, Pythia is not tied to one resource type).
//
// A toy task scheduler executes a pipeline of named tasks; some tasks need a
// "dataset" that takes a long time to load on demand. On the first run the
// scheduler records task-start events. On later runs it asks the oracle,
// after every task, what runs next and in how long — and starts loading a
// dataset early whenever its consumer is predicted within the load latency
// window, hiding the latency exactly the way the paper suggests runtimes
// should spend their foresight.
//
//	go run ./examples/task-prefetch
package main

import (
	"fmt"
	"log"
	"time"

	"repro/pythia"
)

// task is one pipeline stage: a virtual compute cost, and optionally a
// dataset it cannot start without.
type task struct {
	name    string
	costMs  int64
	dataset string
}

// pipeline is one iteration of the application's main loop.
var pipeline = []task{
	{name: "decode", costMs: 2},
	{name: "transform", costMs: 3},
	{name: "enrich", costMs: 2, dataset: "dictionary"}, // needs a slow load
	{name: "aggregate", costMs: 4},
	{name: "emit", costMs: 1},
}

// loadMs is how long loading a dataset takes — much longer than one task.
const loadMs = 5

// run executes n pipeline iterations. When oracle is non-nil (predict mode)
// the scheduler prefetches datasets it expects to need soon. It returns the
// virtual time spent and how often a task had to block on a load.
func run(n int, rec *pythia.Oracle, pred *pythia.Oracle) (totalMs int64, blocked int) {
	oracle := rec
	if pred != nil {
		oracle = pred
	}
	th := oracle.Thread(0)

	var now int64 // virtual ms
	loadedAt := map[string]int64{}
	loadStarted := map[string]int64{}

	for i := 0; i < n; i++ {
		for _, t := range pipeline {
			// Notify the oracle that this task starts.
			th.SubmitAt(oracle.Intern("task."+t.name), now*1e6)

			// In predict mode, look ahead: if a dataset consumer is coming
			// up and its data is not loading yet, start the load now.
			if pred != nil {
				for _, p := range th.PredictSequence(4) {
					name := oracle.EventName(pythia.ID(p.EventID))
					for _, cand := range pipeline {
						if cand.dataset != "" && name == "task."+cand.name {
							if _, started := loadStarted[cand.dataset]; !started {
								loadStarted[cand.dataset] = now
								loadedAt[cand.dataset] = now + loadMs
							}
						}
					}
				}
			}

			// Execute: block if the needed dataset is not resident yet.
			if t.dataset != "" {
				ready, ok := loadedAt[t.dataset]
				if !ok {
					// Demand load.
					blocked++
					now += loadMs
					loadedAt[t.dataset] = now
				} else if ready > now {
					blocked++
					now = ready
				}
			}
			now += t.costMs
		}
		// Datasets go stale between iterations and must be reloaded.
		loadedAt = map[string]int64{}
		loadStarted = map[string]int64{}
	}
	return now, blocked
}

func main() {
	const iters = 200

	// Reference execution: record.
	rec := pythia.NewRecordOracle(pythia.WithClock(func() int64 { return 0 }))
	vanillaMs, vanillaBlocked := run(iters, rec, nil)
	trace, err := rec.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vanilla:   %4d ms, blocked on loads %d times\n", vanillaMs, vanillaBlocked)

	// Subsequent execution: predict and prefetch.
	oracle, err := pythia.NewPredictOracle(trace, pythia.Config{})
	if err != nil {
		log.Fatal(err)
	}
	predictMs, predictBlocked := run(iters, nil, oracle)
	fmt.Printf("prefetch:  %4d ms, blocked on loads %d times\n", predictMs, predictBlocked)
	fmt.Printf("\nthe oracle hides the %dms dataset load behind predicted upstream tasks\n", loadMs)
	fmt.Printf("speedup: %.1f%%\n", (1-float64(predictMs)/float64(vanillaMs))*100)
	_ = time.Now
}
