// MPI oracle: the paper's section III-B MPI runtime system.
//
// A 4-rank stencil application runs on the in-process MPI runtime with a
// Pythia interposer on every rank (the in-language equivalent of the
// paper's LD_PRELOAD shim). The first run records each rank's event stream;
// the second run asks the oracle, at every MPI_Wait, which MPI call comes
// next — the information a real MPI library would use to aggregate sends or
// set up persistent communication while it sits in the wait.
//
//	go run ./examples/mpi-oracle
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/mpisim"
	"repro/pythia"
)

// stencil is a 1-D Jacobi-style halo-exchange program.
func stencil(m mpisim.MPI) {
	n := 64
	cells := make([]float64, n)
	for i := range cells {
		cells[i] = float64(m.Rank())
	}
	left := (m.Rank() + m.Size() - 1) % m.Size()
	right := (m.Rank() + 1) % m.Size()

	for iter := 0; iter < 100; iter++ {
		rl := m.Irecv(left, 0)
		rr := m.Irecv(right, 0)
		m.Isend(left, 0, cells[:1])
		m.Isend(right, 0, cells[n-1:])
		lv := m.Wait(rl)
		rv := m.Wait(rr)
		cells[0] = 0.5 * (cells[0] + lv[0])
		cells[n-1] = 0.5 * (cells[n-1] + rv[0])
		for i := 1; i < n-1; i++ {
			cells[i] = 0.25*cells[i-1] + 0.5*cells[i] + 0.25*cells[i+1]
		}
		if iter%20 == 19 {
			m.Allreduce(mpisim.OpSum, []float64{cells[n/2]})
		}
	}
	m.Barrier()
}

func main() {
	// --- Reference execution under PYTHIA-RECORD -------------------------
	rec := pythia.NewRecordOracle()
	world := mpisim.NewWorld(4)
	world.RunInterposed(func(m mpisim.MPI) mpisim.MPI {
		return mpisim.NewInterposer(m, rec)
	}, stencil)
	trace, err := rec.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded: %d events across %d ranks, %d grammar rules\n",
		trace.TotalEvents(), len(trace.Threads), trace.TotalRules())

	// --- Second execution under PYTHIA-PREDICT ---------------------------
	oracle, err := pythia.NewPredictOracle(trace, pythia.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var queries, known atomic.Int64
	var sampled atomic.Value // one sample prediction string for display

	world2 := mpisim.NewWorld(4)
	world2.RunInterposed(func(m mpisim.MPI) mpisim.MPI {
		ip := mpisim.NewInterposer(m, oracle)
		ip.PredictDistance = 1
		ip.OnPrediction = func(pred pythia.Prediction, ok bool, latency time.Duration) {
			queries.Add(1)
			if ok {
				known.Add(1)
				if m.Rank() == 0 && sampled.Load() == nil {
					sampled.Store(fmt.Sprintf(
						"rank 0 inside MPI_Wait: next call will be %s (p=%.2f, query took %v)",
						oracle.EventName(pythia.ID(pred.EventID)), pred.Probability, latency))
				}
			}
		}
		return ip
	}, stencil)

	fmt.Printf("prediction queries at blocking calls: %d, answered: %d (%.1f%%)\n",
		queries.Load(), known.Load(), 100*float64(known.Load())/float64(queries.Load()))
	if s := sampled.Load(); s != nil {
		fmt.Println(s)
	}
	fmt.Println("an MPI library would use this to aggregate the matching sends or")
	fmt.Println("pre-post the next receive while it waits")
}
