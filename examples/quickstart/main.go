// Quickstart: record a program's event stream, save the trace, reload it,
// and ask the oracle about the future.
//
// The "program" is a toy main loop that alternates a compute phase and an
// I/O phase, with a checkpoint every 8 iterations — the kind of structure
// Pythia compresses into a three-rule grammar.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/pythia"
)

func main() {
	dir, err := os.MkdirTemp("", "pythia-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tracePath := filepath.Join(dir, "loop.pythia")

	// --- First execution: record ----------------------------------------
	rec := pythia.NewRecordOracle(pythia.WithClock(virtualClock()))
	compute := rec.Intern("compute")
	io := rec.Intern("io")
	checkpoint := rec.Intern("checkpoint")

	th := rec.Thread(0)
	for i := 0; i < 64; i++ {
		th.Submit(compute) // ~2ms of work
		th.Submit(io)      // ~0.5ms of work
		if i%8 == 7 {
			th.Submit(checkpoint) // ~10ms
		}
	}
	if err := rec.FinishAndSave(tracePath); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recorded 64 iterations ->", tracePath)

	// --- Second execution: predict ---------------------------------------
	oracle, err := pythia.LoadOracle(tracePath, pythia.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pth := oracle.Thread(0)

	// Attach mid-run: submit a few events as the "new" execution reaches
	// the same key points. No need to start at the beginning.
	for i := 0; i < 10; i++ {
		pth.Submit(oracle.Intern("compute"))
		pth.Submit(oracle.Intern("io"))
	}

	fmt.Println("\nafter 10 iterations, the oracle expects next:")
	for _, p := range pth.PredictSequence(5) {
		fmt.Printf("  +%d  %-12s p=%.2f  in ~%s\n",
			p.Distance, oracle.EventName(pythia.ID(p.EventID)),
			p.Probability, time.Duration(p.ExpectedNs))
	}

	if p, ok := pth.PredictDurationUntil(oracle.Intern("checkpoint"), 64); ok {
		fmt.Printf("\nnext checkpoint: %d events away, in ~%s (p=%.2f)\n",
			p.Distance, time.Duration(p.ExpectedNs), p.Probability)
		fmt.Println("a runtime could use that window to prefetch the checkpoint buffers")
	}
}

// virtualClock yields deterministic timestamps mimicking the phase costs, so
// the example's output is stable: compute 2ms, io 0.5ms, checkpoint 10ms.
func virtualClock() func() int64 {
	var now int64
	phase := 0
	return func() int64 {
		switch phase % 17 {
		case 16: // checkpoint position in the 8-iteration cycle (2*8+1)
			now += 10e6
		default:
			if phase%2 == 0 {
				now += 2e6 // compute
			} else {
				now += 5e5 // io
			}
		}
		phase++
		return now
	}
}
